//! Regression test for `par_try_map`'s detached overrunners.
//!
//! When an attempt overruns its wall-clock budget, the harness returns
//! `RunError::Timeout` immediately and deliberately leaves the stuck
//! attempt thread behind (there is no safe way to cancel it). That is
//! fine for a one-shot sweep binary — but a long-lived process (the
//! `mcd-serve` service) must be able to rely on those threads *exiting
//! on their own* once their work completes, rather than accumulating.
//!
//! This suite pins that contract via `/proc/self/task`: after a batch of
//! deliberate overruns, the process thread count returns to its
//! pre-batch baseline. Everything lives in ONE `#[test]` function (its
//! own integration binary) so no concurrent test perturbs the count.

use std::time::{Duration, Instant};

use mcd_bench::error::RunError;
use mcd_bench::parallel::par_try_map;

/// Threads currently alive in this process (Linux).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|entries| entries.count())
        .expect("/proc/self/task readable on Linux")
}

/// Polls until the thread count drops back to `baseline` (the detached
/// sleepers exiting), failing after `patience`.
fn await_baseline(baseline: usize, patience: Duration, what: &str) {
    let deadline = Instant::now() + patience;
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: thread count stuck at {now}, baseline {baseline} — detached \
             overrunners leaked"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn detached_overrunners_exit_and_the_thread_count_returns_to_baseline() {
    let baseline = thread_count();

    // Phase 1: plain overrunners. Six items, each sleeping well past the
    // 50 ms budget; the timeout is transient so each is retried once —
    // up to twelve detached threads in flight right after the call.
    let results = par_try_map(
        3,
        (0..6u64).collect(),
        Some(Duration::from_millis(50)),
        |i| {
            std::thread::sleep(Duration::from_millis(400));
            Ok::<u64, RunError>(i)
        },
    );
    assert_eq!(
        results.len(),
        6,
        "one ordered slot per item, even on timeout"
    );
    for r in &results {
        assert!(
            matches!(r, Err(RunError::Timeout { .. })),
            "every overrunner times out: {r:?}"
        );
    }
    await_baseline(baseline, Duration::from_secs(10), "plain overrunners");

    // Phase 2: the same contract with the failure injected through the
    // harness's own MCD_FAULTS hook, end to end through a real
    // experiment. Only compiled under the `faults` CI job.
    #[cfg(feature = "fault-inject")]
    {
        use mcd_bench::experiments;
        use mcd_bench::runner::{RunConfig, RunSet};

        let baseline = thread_count();
        std::env::set_var("MCD_FAULTS", "fig8=delay:300");
        let mut cfg = RunConfig::quick();
        cfg.ops = 4000;
        let results = par_try_map(
            2,
            vec![("fig8", cfg.clone()), ("fig8", cfg)],
            Some(Duration::from_millis(60)),
            |(id, cfg)| {
                let rs = RunSet::new(1);
                experiments::run_on(&rs, id, &cfg).map(|_| ())
            },
        );
        std::env::remove_var("MCD_FAULTS");
        for r in &results {
            assert!(
                matches!(r, Err(RunError::Timeout { .. })),
                "the injected delay must trip the budget: {r:?}"
            );
        }
        await_baseline(
            baseline,
            Duration::from_secs(15),
            "fault-injected overrunners",
        );
    }
}
