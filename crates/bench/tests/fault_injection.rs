//! End-to-end resilience tests for the `repro` sweep, driven through the
//! real binary with deterministic injected faults (`MCD_FAULTS`, see
//! `src/fault.rs`). Compiled only under the `fault-inject` feature; CI's
//! `faults` job runs them with:
//!
//! ```text
//! cargo test --release -p mcd-bench --features fault-inject
//! ```
#![cfg(feature = "fault-inject")]

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

/// Runs the `repro` binary (built with this test's feature set) with the
/// given arguments and `MCD_FAULTS` value.
fn repro(faults: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("MCD_FAULTS", faults)
        .output()
        .expect("spawn repro")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn scratch_dir() -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "mcd-fault-test-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The acceptance scenario: one experiment panics (on both attempts), one
/// overruns its wall-clock budget; everything else completes, the failure
/// table names both casualties with their error class, and the process
/// exits nonzero.
#[test]
fn faulted_sweep_completes_everything_else_and_exits_nonzero() {
    let out = repro(
        "stability=panic,sampling=delay:5000",
        &[
            "table1",
            "stability",
            "overshoot",
            "sampling",
            "bandwidth",
            "--quick",
            "--run-timeout",
            "0.5",
        ],
    );
    assert!(
        !out.status.success(),
        "a sweep with failures must exit nonzero"
    );
    let text = stdout(&out);
    assert!(
        text.contains("FAILURES: 2 of 5"),
        "missing failure summary:\n{text}"
    );
    // The table names both casualties with their class.
    let failure_line = |id: &str| {
        text.lines()
            .find(|l| l.contains(id) && (l.contains("panicked") || l.contains("timeout")))
            .unwrap_or_else(|| panic!("no failure-table line for {id}:\n{text}"))
            .to_string()
    };
    assert!(failure_line("stability").contains("panicked"));
    assert!(failure_line("sampling").contains("timeout"));
    // The survivors' reports were still printed.
    for report_header in ["Table 1", "overshoot", "bandwidth"] {
        assert!(
            text.to_lowercase().contains(&report_header.to_lowercase()),
            "surviving report {report_header:?} missing:\n{text}"
        );
    }
}

/// A fault on the first attempt only (`panic-once`) is transient: the
/// harness's single retry succeeds and the sweep exits zero.
#[test]
fn transient_panic_is_retried_and_the_sweep_succeeds() {
    let out = repro("overshoot=panic-once", &["overshoot", "--quick"]);
    assert!(
        out.status.success(),
        "transient failure should be absorbed by the retry: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(!text.contains("FAILURES"), "unexpected failures:\n{text}");
    assert!(text.to_lowercase().contains("overshoot"));
}

/// Checkpoint + resume: a faulted sweep records its completed entries;
/// resuming re-runs only the failure and regenerates byte-identical
/// output. The resumed entries are provably *not* re-executed: the resume
/// run injects a permanent panic into one of them, and still succeeds.
#[test]
fn resume_reruns_only_the_failures_and_output_is_byte_identical() {
    let base = scratch_dir();
    let ck = base.join("ck");
    let first_out = base.join("first");
    let resumed_out = base.join("resumed");
    let fresh_out = base.join("fresh");
    let args = |out_dir: &PathBuf, extra: &[&str]| {
        let mut v: Vec<String> = ["table1", "stability", "overshoot", "--quick", "--out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        v.push(out_dir.display().to_string());
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let ck_flag = ["--checkpoint".to_string(), ck.display().to_string()];

    // 1. Faulted sweep: stability fails, the others complete + checkpoint.
    let first = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args(&first_out, &[]))
        .args(&ck_flag)
        .env("MCD_FAULTS", "stability=panic")
        .output()
        .expect("spawn repro");
    assert!(!first.status.success());
    assert!(first_out.join("table1.txt").exists());
    assert!(first_out.join("overshoot.txt").exists());
    assert!(!first_out.join("stability.txt").exists());
    assert!(
        stdout(&first).contains("re-run with --resume"),
        "checkpointed failure should suggest --resume"
    );

    // 2. Resume with the fault cleared — but table1 booby-trapped: if the
    //    harness re-ran it instead of replaying the checkpoint, it would
    //    panic and the sweep would fail.
    let resumed = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args(&resumed_out, &["--resume"]))
        .args(&ck_flag)
        .env("MCD_FAULTS", "table1=panic")
        .output()
        .expect("spawn repro");
    assert!(
        resumed.status.success(),
        "resume should only re-run the failed entry: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    // 3. A fresh fault-free sweep is the byte-identical reference.
    let fresh = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args(&fresh_out, &[]))
        .env("MCD_FAULTS", "")
        .output()
        .expect("spawn repro");
    assert!(fresh.status.success());
    assert_eq!(
        stdout(&resumed),
        stdout(&fresh),
        "resumed stdout must match a fresh run byte for byte"
    );
    for id in ["table1", "stability", "overshoot"] {
        let a = std::fs::read(resumed_out.join(format!("{id}.txt"))).expect("resumed report");
        let b = std::fs::read(fresh_out.join(format!("{id}.txt"))).expect("fresh report");
        assert_eq!(a, b, "{id} report differs after resume");
    }
    std::fs::remove_dir_all(&base).ok();
}
