//! The harness's parallelism must be observably free: every simulation is
//! single-threaded and deterministic, so fanning runs across workers can
//! change only wall-clock time, never a result. These tests pin that down
//! to the bit.

use mcd_bench::parallel::par_map;
use mcd_bench::{RunConfig, RunSet, Scheme};

/// The same (benchmark, scheme) runs through a serial and a 4-worker
/// `par_map` produce bit-identical simulation results.
#[test]
fn parallel_runs_match_serial_runs_bit_for_bit() {
    let cfg = RunConfig::quick().with_ops(20_000);
    let tasks: Vec<&str> = vec!["gzip", "swim"];
    let run_all = |jobs: usize| {
        par_map(jobs, tasks.clone(), |name| {
            mcd_bench::runner::run(name, Scheme::Adaptive, &cfg).expect("valid run")
        })
    };
    let serial = run_all(1);
    let parallel = run_all(4);
    assert_eq!(serial.len(), parallel.len());
    for (name, (s, p)) in tasks.iter().zip(serial.iter().zip(&parallel)) {
        assert_eq!(s.sim_time, p.sim_time, "{name}: sim_time diverged");
        assert_eq!(
            s.instructions, p.instructions,
            "{name}: instruction count diverged"
        );
        assert_eq!(
            s.total_energy().as_joules().to_bits(),
            p.total_energy().as_joules().to_bits(),
            "{name}: total energy diverged"
        );
    }
}

/// A full experiment report is byte-identical whatever the worker count:
/// `par_map` returns results in input order, and the baseline memo cache
/// only changes *when* a baseline is simulated, not its result.
#[test]
fn headline_report_is_byte_identical_across_worker_counts() {
    let cfg = RunConfig::quick().with_ops(10_000);
    let serial = mcd_bench::experiments::run_on(&RunSet::new(1), "fig9", &cfg);
    let parallel = mcd_bench::experiments::run_on(&RunSet::new(8), "fig9", &cfg);
    assert_eq!(serial, parallel);
}

/// The baseline memo cache answers repeated requests without re-running,
/// and cached results are shared, not recomputed.
#[test]
fn baseline_cache_dedupes_repeat_requests() {
    let cfg = RunConfig::quick().with_ops(5_000);
    let rs = RunSet::new(4);
    let first = rs.baseline("gzip", &cfg).expect("valid run");
    let again = rs.baseline("gzip", &cfg).expect("valid run");
    assert_eq!(first.sim_time, again.sim_time);
    let stats = rs.stats();
    assert_eq!(stats.runs, 1, "second request must hit the cache");
    assert_eq!(
        stats.baseline_requests, 2,
        "every lookup counts as a request"
    );

    // A controller-only knob must not split the cache key...
    let mut pid_cfg = cfg.clone();
    pid_cfg.pid_interval *= 2;
    let _ = rs.baseline("gzip", &pid_cfg);
    assert_eq!(rs.stats().runs, 1, "pid_interval must not split the key");

    // ...but anything that changes the simulated machine must.
    let mut traced = cfg.clone();
    traced.traces = true;
    let _ = rs.baseline("gzip", &traced);
    assert_eq!(rs.stats().runs, 2, "traces flag must split the key");
}
