//! Flight-recorder round trips at the harness level: a traced, sharded
//! `RunSet` sweep drained into `.mcdt` must decode back to exactly the
//! stream a JSONL `--trace-out` run would have written, carry the shard
//! anchors replay needs, and index episodes identically to the offline
//! catalog.

use mcd_bench::runner::{RecorderSink, RunConfig, RunSet, Scheme};
use mcd_bench::trace_analyze;
use mcd_trace::{catalog_episodes, read_index, read_mcdt, write_mcdt};

fn sharded_cfg() -> RunConfig {
    RunConfig::quick().with_ops(20_000).with_shard_ops(4_000)
}

/// One traced sweep: two schemes over one benchmark, sharded so the
/// recorder sees anchors.
fn recorded_sweep() -> Vec<mcd_trace::RunRecording> {
    let rs = RunSet::new(2).with_tracing();
    let cfg = sharded_cfg();
    rs.baseline("gzip", &cfg).expect("baseline runs");
    rs.run("gzip", Scheme::Adaptive, &cfg)
        .expect("adaptive runs");
    rs.drain_recordings().expect("tracing was enabled")
}

#[test]
fn mcdt_of_a_sharded_sweep_round_trips_and_carries_anchors() {
    let recordings = recorded_sweep();
    assert!(!recordings.is_empty());
    let traced_run = recordings
        .iter()
        .find(|r| r.label.contains("adaptive"))
        .expect("the adaptive run is recorded");
    assert!(
        !traced_run.events.is_empty(),
        "the adaptive run produces events"
    );
    assert!(
        !traced_run.anchors.is_empty(),
        "a 20k-op run sharded every 4k ops must record boundary anchors"
    );
    assert!(
        traced_run.spec.is_some(),
        "registry runs carry a replay spec"
    );

    let bytes = write_mcdt(&recordings);
    let decoded = read_mcdt(&bytes).expect("own bytes decode");
    assert_eq!(decoded.runs.len(), recordings.len());
    for (a, b) in decoded.runs.iter().zip(&recordings) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.events, b.events);
        assert_eq!(a.anchors.len(), b.anchors.len());
        for (x, y) in a.anchors.iter().zip(&b.anchors) {
            assert_eq!(x.event_index, y.event_index);
            assert_eq!(x.retired, y.retired);
            assert_eq!(x.snapshot, y.snapshot);
        }
    }
}

#[test]
fn mcdt_renders_byte_identically_to_the_direct_jsonl_run() {
    let recordings = recorded_sweep();
    let direct = trace_analyze::render_recordings(&recordings);
    let bytes = write_mcdt(&recordings);
    let decoded = read_mcdt(&bytes).expect("own bytes decode");
    let via_mcdt = trace_analyze::render_recordings(&decoded.runs);
    assert_eq!(
        via_mcdt, direct,
        "mcdt -> JSONL must be byte-identical to a direct JSONL trace"
    );
    // And the analyzer cannot tell them apart.
    let a = trace_analyze::analyze(&direct).expect("valid").report();
    let b = trace_analyze::analyze(&via_mcdt).expect("valid").report();
    assert_eq!(a, b);
}

#[test]
fn index_episodes_match_the_offline_catalog_and_analyzer_totals() {
    let recordings = recorded_sweep();
    let bytes = write_mcdt(&recordings);
    let index = read_index(&bytes).expect("index decodes");
    assert_eq!(index.runs.len(), recordings.len());
    let mut indexed_total = 0usize;
    for (run_idx, rec) in index.runs.iter().zip(&recordings) {
        let catalog = catalog_episodes(&rec.events);
        assert_eq!(run_idx.episodes.len(), catalog.len(), "run {}", rec.label);
        for (a, b) in run_idx.episodes.iter().zip(&catalog) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.onset_event_index, b.onset_event_index);
            assert_eq!(a.onset_ps, b.onset_ps);
            assert_eq!(a.close_event_index, b.close_event_index);
            assert_eq!(a.reaction_ps, b.reaction_ps);
            assert_eq!(a.relay_resets, b.relay_resets);
        }
        indexed_total += catalog.len();
    }
    assert_eq!(index.episode_count(), indexed_total);
    assert!(indexed_total > 0, "a traced adaptive run has episodes");

    // The catalog's reacted-episode count per domain equals the
    // analyzer's, since both replay the same onset rule.
    let jsonl = trace_analyze::render_recordings(&recordings);
    let analysis = trace_analyze::analyze(&jsonl).expect("valid");
    let mut reacted = [0u64; 3];
    for run_idx in &index.runs {
        for ep in &run_idx.episodes {
            if ep.reaction_ps.is_some() {
                reacted[ep.domain] += 1;
            }
        }
    }
    let mean_of = |d: usize| analysis.mean_reaction_time_ns(d);
    for (d, &count) in reacted.iter().enumerate() {
        assert_eq!(
            mean_of(d).is_some(),
            count > 0,
            "domain {d}: analyzer and catalog agree on whether anything reacted"
        );
    }
}

#[test]
fn direct_recorder_sink_on_a_sharded_run_sees_every_boundary() {
    let cfg = sharded_cfg();
    let mut sink = RecorderSink::new();
    mcd_bench::runner::run_traced("gzip", Scheme::Adaptive, &cfg, &mut sink).expect("runs");
    let (events, anchors) = sink.into_parts();
    assert!(!events.is_empty());
    // 20k ops sharded every 4k: boundaries at 4k..16k (the final segment
    // drains), each with a monotonically increasing retired count.
    assert_eq!(anchors.len(), 4, "one anchor per non-final boundary");
    for pair in anchors.windows(2) {
        assert!(pair[0].retired < pair[1].retired);
        assert!(pair[0].event_index <= pair[1].event_index);
    }
    for a in &anchors {
        assert!(!a.snapshot.is_empty(), "anchors embed the machine state");
    }
}
