//! End-to-end contract of `repro trace analyze`: the offline report is
//! a pure function of the trace bytes (so it is byte-identical whatever
//! worker count produced the trace), and the distributions it
//! reconstructs agree with the always-on counters.

use mcd_bench::experiments;
use mcd_bench::runner::{ControllerActivity, RunConfig, RunSet};
use mcd_bench::trace_analyze::{analyze, render_traces};

/// Runs fig9 with tracing on `jobs` workers and returns the rendered
/// JSONL plus the counters the run accumulated.
fn traced_run(jobs: usize) -> (String, ControllerActivity) {
    let cfg = RunConfig::quick().with_ops(20_000);
    let rs = RunSet::new(jobs).with_tracing();
    experiments::run_on(&rs, "fig9", &cfg).expect("valid run");
    let traces = rs.drain_traces().expect("tracing enabled");
    (render_traces(&traces), rs.activity())
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let (trace1, _) = traced_run(1);
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| {
            let (trace, _) = traced_run(jobs);
            analyze(&trace).expect("trace parses").report()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "jobs=1 vs jobs=2");
    assert_eq!(reports[0], reports[2], "jobs=1 vs jobs=8");
    // And the trace bytes themselves are jobs-invariant (drain_traces
    // sorts), so the analyzer input really is the same artifact.
    let (trace8, _) = traced_run(8);
    assert_eq!(trace1, trace8);
}

#[test]
fn reconstructed_reaction_times_match_the_counters() {
    let (trace, activity) = traced_run(2);
    let analysis = analyze(&trace).expect("trace parses");
    for i in 0..3 {
        match (
            analysis.mean_reaction_time_ns(i),
            activity.mean_reaction_time_ns(i),
        ) {
            (Some(a), Some(b)) => assert!(
                (a - b).abs() < 1e-9,
                "domain {i}: analyzer mean {a} != counter mean {b}"
            ),
            (a, b) => assert_eq!(
                a.is_none(),
                b.is_none(),
                "domain {i}: one side saw reactions the other missed"
            ),
        }
    }
    assert!(
        (0..3).any(|i| activity.mean_reaction_time_ns(i).is_some()),
        "fig9 must produce completed reactions for the comparison to bite"
    );
}

#[test]
fn report_round_trips_through_a_file() {
    let (trace, _) = traced_run(2);
    let dir = std::env::temp_dir().join(format!("mcd-trace-analyze-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("fig9.trace.jsonl");
    std::fs::write(&path, &trace).expect("write trace");
    let reread = std::fs::read_to_string(&path).expect("read trace");
    assert_eq!(
        analyze(&trace).expect("direct").report(),
        analyze(&reread).expect("from disk").report(),
        "disk round-trip must not perturb the report"
    );
    std::fs::remove_dir_all(&dir).ok();
}
