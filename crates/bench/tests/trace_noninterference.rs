//! The observability layer must be a pure observer: running with event
//! tracing, distribution telemetry, or span profiling enabled must leave
//! every report byte-identical, and the traces it produces must be
//! well-formed and complete (every relay firing and frequency step the
//! counters saw appears in the event stream).

use mcd_bench::experiments;
use mcd_bench::runner::{run_traced, RunConfig, RunSet, RunStats, Scheme};
use mcd_sim::trace::NullSink;
use mcd_sim::{CtrlEvent, TraceEvent};
use mcd_trace::BinarySink;

/// Counter equivalence modulo the scheduler's dispatch/batch split.
///
/// An enabled sink observes every sampling period, so the engine's
/// sample-batching fast path legitimately turns itself off: periods the
/// plain run absorbed as `cycles_skipped` are dispatched one event at a
/// time instead. The simulated history is identical — same runs, same
/// instructions, same total scheduler work (`events + skipped`) — only
/// the split between the two counters moves.
fn assert_stats_equivalent(plain: RunStats, observed: RunStats) {
    assert_eq!(plain.runs, observed.runs);
    assert_eq!(plain.instructions, observed.instructions);
    assert_eq!(plain.baseline_requests, observed.baseline_requests);
    assert_eq!(
        plain.events_processed + plain.cycles_skipped,
        observed.events_processed + observed.cycles_skipped,
        "total scheduler work must be sink-independent"
    );
    assert!(
        observed.cycles_skipped <= plain.cycles_skipped,
        "an enabled sink can only reduce batching, never add to it"
    );
}

#[test]
fn tracing_leaves_reports_byte_identical() {
    let cfg = RunConfig::quick().with_ops(20_000);
    let plain = RunSet::new(2);
    let traced = RunSet::new(2).with_tracing();
    for id in ["fig9", "ablate-qref"] {
        let a = experiments::run_on(&plain, id, &cfg);
        let b = experiments::run_on(&traced, id, &cfg);
        assert_eq!(a, b, "{id} report changed under tracing");
    }
    // The always-on counters are sink-independent too.
    assert_stats_equivalent(plain.stats(), traced.stats());
    assert_eq!(plain.activity(), traced.activity());
    // And the untraced set has no trace stream at all.
    assert!(plain.drain_traces().is_none());
}

#[test]
fn telemetry_and_profiling_leave_reports_byte_identical() {
    let cfg = RunConfig::quick().with_ops(20_000);
    let plain = RunSet::new(2);
    let instrumented = RunSet::new(2).with_telemetry().with_profiling();
    for id in ["fig9", "ablate-qref"] {
        let a = experiments::run_on(&plain, id, &cfg);
        let b = experiments::run_on(&instrumented, id, &cfg);
        assert_eq!(a, b, "{id} report changed under telemetry + profiling");
    }
    assert_stats_equivalent(plain.stats(), instrumented.stats());
    assert_eq!(plain.activity(), instrumented.activity());
    // The instrumentation did observe the runs it rode along with...
    let tel = instrumented.telemetry().expect("telemetry enabled");
    assert!(tel.reaction_ps.iter().any(|h| h.snapshot().count() > 0));
    assert!(instrumented.profiler().snapshot().total_nanos() > 0);
    // ...while the plain set carries none of it.
    assert!(plain.telemetry().is_none());
    assert!(plain.profiler().snapshot().is_empty());
}

#[test]
fn traces_are_wellformed_and_cover_all_firings_and_steps() {
    let cfg = RunConfig::quick().with_ops(20_000);
    let rs = RunSet::new(2).with_tracing();
    experiments::run_on(&rs, "fig9", &cfg).expect("valid run");
    let activity = rs.activity();
    let traces = rs.drain_traces().expect("tracing enabled");
    assert!(!traces.is_empty());

    let mut fires = 0u64;
    let mut steps = 0u64;
    for (label, events) in &traces {
        assert!(!label.is_empty());
        for ev in events {
            let json = ev.to_json();
            assert!(
                json.starts_with('{') && json.ends_with('}') && json.contains("\"domain\":"),
                "malformed event line: {json}"
            );
            match ev {
                TraceEvent::Controller {
                    event: CtrlEvent::RelayFire { .. },
                    ..
                } => fires += 1,
                TraceEvent::FreqStep { .. } => steps += 1,
                _ => {}
            }
        }
    }
    let counted_fires: u64 = activity.relay_fires.iter().sum();
    let counted_steps: u64 = (0..3).map(|i| activity.freq_steps(i)).sum();
    assert!(counted_fires > 0, "expected controller activity in fig9");
    assert_eq!(fires, counted_fires, "relay firings missing from trace");
    assert_eq!(steps, counted_steps, "frequency steps missing from trace");
}

#[test]
fn binary_sink_leaves_results_byte_identical() {
    // The flight recorder's framing sink is just another TraceSink: a
    // run streamed straight into a BinarySink must report exactly what
    // the NullSink run does, sharded or not, and the bytes it framed
    // must decode back to a well-formed single-run stream.
    for shard in [0u64, 5_000] {
        let cfg = RunConfig::quick().with_ops(15_000).with_shard_ops(shard);
        let mut plain = NullSink;
        let a = run_traced("gzip", Scheme::Adaptive, &cfg, &mut plain).expect("plain run");
        let mut sink = BinarySink::new();
        sink.start_run("gzip|adaptive", None);
        let b = run_traced("gzip", Scheme::Adaptive, &cfg, &mut sink).expect("recorded run");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "shard_ops={shard}: recording to a BinarySink changed the result"
        );
        let decoded = mcd_trace::read_mcdt(&sink.finish()).expect("framed bytes decode");
        assert_eq!(decoded.runs.len(), 1);
        assert!(!decoded.runs[0].events.is_empty());
        let anchors = decoded.runs[0].anchors.len();
        assert_eq!(anchors > 0, shard > 0, "anchors iff sharded");
    }
}

#[test]
fn drain_traces_is_deterministic_across_worker_counts() {
    let cfg = RunConfig::quick().with_ops(20_000);
    let render = |jobs: usize| {
        let rs = RunSet::new(jobs).with_tracing();
        experiments::run_on(&rs, "fig9", &cfg).expect("valid run");
        let mut out = String::new();
        for (label, events) in rs.drain_traces().expect("tracing enabled") {
            for ev in events {
                out.push_str(&format!("{label} {}\n", ev.to_json()));
            }
        }
        out
    };
    assert_eq!(render(1), render(4));
}
