//! Property tests for the checkpoint layer: fingerprint injectivity on
//! every swept configuration field, byte-exact record round-trips, and
//! version pinning of the code fingerprint.

use std::sync::atomic::{AtomicU32, Ordering};

use mcd_bench::checkpoint::{code_fingerprint, code_fingerprint_for, CheckpointDir, CompletedRun};
use mcd_bench::runner::RunConfig;
use proptest::prelude::*;
use proptest::{collection, sample};

fn scratch_dir() -> std::path::PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "mcd-bench-ckpt-props-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The swept knobs as a tuple (tuples print nicely in failure reports).
fn knobs() -> impl Strategy<Value = (u64, u64, u64, f64)> {
    (
        1u64..2_000_000,
        0u64..1_000,
        1u64..100_000,
        sample::select(vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0]),
    )
}

fn cfg_from((ops, seed, pid_interval, q_ref_scale): (u64, u64, u64, f64)) -> RunConfig {
    let mut cfg = RunConfig::quick();
    cfg.ops = ops;
    cfg.seed = seed;
    cfg.pid_interval = pid_interval;
    cfg.q_ref_scale = q_ref_scale;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Two configurations collide in fingerprint space iff they agree on
    /// every swept field — the property that makes the fingerprint safe
    /// as a cache/coalescing content address.
    #[test]
    fn fingerprint_is_injective_on_swept_fields(a in knobs(), b in knobs()) {
        let fa = CheckpointDir::fingerprint(&cfg_from(a));
        let fb = CheckpointDir::fingerprint(&cfg_from(b));
        if a == b {
            prop_assert_eq!(fa, fb, "equal configs must share a fingerprint");
        } else {
            prop_assert!(fa != fb, "distinct configs {:?} vs {:?} collided on {}", a, b, fa);
        }
    }

    /// Changing only the code version changes the fingerprint — the
    /// stale-warm-cache guard — while the current-version fingerprint is
    /// stable across calls.
    #[test]
    fn fingerprint_tracks_the_code_version(k in knobs()) {
        let cfg = cfg_from(k);
        let current = CheckpointDir::fingerprint(&cfg);
        prop_assert!(current.starts_with(&code_fingerprint()));
        prop_assert_eq!(&current, &CheckpointDir::fingerprint(&cfg), "stable");
        let old = CheckpointDir::fingerprint_for(&cfg, &code_fingerprint_for("0.0.0-old"));
        prop_assert!(current != old, "a version flip must change the address: {}", current);
    }

    /// Store → load round-trips the record exactly, and the bytes on
    /// disk are precisely `record_json` plus a trailing newline — the
    /// contract the serve cache relies on for byte-identical warm hits.
    #[test]
    fn records_roundtrip_byte_exact(
        lines in collection::vec(0u32..1_000_000, 1..8),
        wall_ms in 0u64..3_600_000,
        runs in 0u64..500,
        instructions in 0u64..50_000_000_000,
        baseline_requests in 0u64..500,
        events_processed in 0u64..10_000_000_000,
        cycles_skipped in 0u64..10_000_000_000,
        kind in sample::select(vec!["simulation", "analysis"]),
        p50_ms in 0u64..60_000,
        p99_ms in 0u64..60_000,
    ) {
        let run = CompletedRun {
            report: lines
                .iter()
                .map(|n| format!("metric line {n}\n"))
                .collect::<String>(),
            kind: kind.to_string(),
            // Milliseconds keep `{:.3}` rendering lossless, matching how
            // real wall times are only meaningful to the millisecond.
            wall_s: wall_ms as f64 / 1000.0,
            runs,
            instructions,
            baseline_requests,
            events_processed,
            cycles_skipped,
            run_wall_p50_s: p50_ms as f64 / 1000.0,
            run_wall_p99_s: p99_ms as f64 / 1000.0,
        };
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "prop-fingerprint").expect("open");
        ck.store("case", &run).expect("store");

        let loaded = ck.load("case").expect("stored entries load");
        prop_assert_eq!(&loaded, &run, "round-trip must be lossless");

        let on_disk = std::fs::read_to_string(dir.join("case.record.json")).expect("record file");
        let mut rendered = loaded.record_json("case");
        rendered.push('\n');
        prop_assert_eq!(on_disk, rendered, "disk bytes == re-rendered record");

        prop_assert_eq!(ck.ids(), vec!["case".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
