//! The replay contract: `repro trace replay` of **any** catalogued
//! episode must reproduce the original trace slice byte for byte. This
//! suite records a sharded sweep to `.mcdt` and replays every episode,
//! covering cold starts (onset before the first anchor), warm anchor
//! restores, and end-of-run segments — plus the typed refusals for
//! out-of-range ordinals and spec-less recordings.

use mcd_bench::replay::replay_episode;
use mcd_bench::runner::{RunConfig, RunSet, Scheme};
use mcd_trace::{read_index, write_mcdt, RunRecording};

/// Records one sharded, traced sweep and returns its `.mcdt` bytes.
fn record(benchmark: &str, scheme: Scheme, ops: u64, shard: u64) -> Vec<u8> {
    let rs = RunSet::new(2).with_tracing();
    let cfg = RunConfig::quick().with_ops(ops).with_shard_ops(shard);
    rs.run(benchmark, scheme, &cfg).expect("run succeeds");
    write_mcdt(&rs.drain_recordings().expect("tracing on"))
}

#[test]
fn every_catalogued_episode_replays_byte_identically() {
    let bytes = record("gzip", Scheme::Adaptive, 20_000, 4_000);
    let index = read_index(&bytes).expect("index decodes");
    let total = index.episode_count();
    assert!(total > 0, "an adaptive run has episodes");
    let mut cold = 0usize;
    let mut warm = 0usize;
    for k in 0..total {
        let outcome = replay_episode(&bytes, k).unwrap_or_else(|e| {
            panic!("episode {k}/{total} failed to replay: {e}");
        });
        assert!(
            outcome.byte_identical,
            "episode {k}/{total} diverged: run {} segment [{}, {})",
            outcome.run_label, outcome.start_event_index, outcome.end_event_index,
        );
        assert!(!outcome.replayed.is_empty(), "episode {k} replayed nothing");
        match outcome.anchor_retired {
            None => cold += 1,
            Some(_) => warm += 1,
        }
    }
    assert!(cold > 0, "episodes before the first anchor start cold");
    assert!(warm > 0, "episodes after an anchor restore from it");
}

#[test]
fn unsharded_recordings_replay_whole_runs_cold() {
    // No sharding -> no anchors: every episode replays the entire run
    // from a cold start, and must still match byte for byte.
    let bytes = record("swim", Scheme::Adaptive, 12_000, 0);
    let index = read_index(&bytes).expect("index decodes");
    assert!(index.runs.iter().all(|r| r.anchors.is_empty()));
    let total = index.episode_count();
    assert!(total > 0);
    // Whole-run cold replays are identical work per episode; one from
    // each end of the catalog keeps the suite fast.
    for k in [0, total - 1] {
        let outcome = replay_episode(&bytes, k).expect("replays");
        assert!(outcome.byte_identical, "episode {k} diverged");
        assert_eq!(outcome.anchor_retired, None);
        assert_eq!(outcome.start_event_index, 0);
    }
}

#[test]
fn out_of_range_ordinals_are_typed_errors() {
    let bytes = record("gzip", Scheme::Adaptive, 8_000, 4_000);
    let total = read_index(&bytes).expect("index decodes").episode_count();
    let e = replay_episode(&bytes, total + 10).expect_err("out of range");
    assert_eq!(e.kind(), "config-invalid");
    assert!(e.to_string().contains("out of range"), "{e}");
}

#[test]
fn recordings_without_a_replay_spec_are_refused() {
    // Hand-build a recording the way `trace convert` does from JSONL:
    // events only, no spec, no anchors.
    let rs = RunSet::new(1).with_tracing();
    let cfg = RunConfig::quick().with_ops(8_000).with_shard_ops(4_000);
    rs.run("gzip", Scheme::Adaptive, &cfg)
        .expect("run succeeds");
    let stripped: Vec<RunRecording> = rs
        .drain_recordings()
        .expect("tracing on")
        .into_iter()
        .map(|mut r| {
            r.spec = None;
            r.anchors.clear();
            r
        })
        .collect();
    let bytes = write_mcdt(&stripped);
    let total = read_index(&bytes).expect("index decodes").episode_count();
    assert!(total > 0);
    let e = replay_episode(&bytes, 0).expect_err("no spec, no replay");
    assert_eq!(e.kind(), "config-invalid");
    assert!(e.to_string().contains("no replay spec"), "{e}");
}
