//! Figure 7: FP-domain frequency trace under adaptive DVFS for
//! `epic_decode`.
//!
//! The paper's shape: the FP queue is emptying from the start, so the
//! controller drops the FP clock to f_min; a modest workload phase about a
//! quarter of the way through recovers the frequency partway; the queue
//! then empties again (back to f_min) until a dramatic burst near the end
//! drives the clock to f_max.

use mcd_sim::DomainId;

use crate::error::RunError;
use crate::runner::{RunConfig, RunSet, Scheme};
use crate::table::Table;

/// The decimated frequency series: (instructions ×1000, relative
/// frequency).
pub fn series(rs: &RunSet, cfg: &RunConfig) -> Result<Vec<(f64, f64)>, RunError> {
    let mut run_cfg = cfg.clone();
    run_cfg.traces = true;
    let result = rs.run("epic_decode", Scheme::Adaptive, &run_cfg)?;
    let bi = DomainId::Fp.backend_index();
    let freq = &result.metrics.frequency[bi];
    let retired = &result.metrics.retired_trace;
    let n = freq.len().min(retired.len());
    let stride = (n / 120).max(1);
    Ok((0..n)
        .step_by(stride)
        .map(|i| (retired[i] as f64 / 1e3, freq[i].rel_freq))
        .collect())
}

/// Renders the Figure 7 series over the whole program (one full pass of
/// epic_decode's phase list, ≈1 M instructions).
pub fn run(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let spec = mcd_workloads::registry::by_name("epic_decode")
        .ok_or_else(|| RunError::Workload("unknown benchmark epic_decode".into()))?;
    let cfg = cfg.clone().with_ops(cfg.ops.max(spec.cycle_length()));
    let pts = series(rs, &cfg)?;
    let mut t = Table::new(["insts (thousands)", "relative frequency", ""]);
    for (k, f) in &pts {
        let bar_len = ((f - 0.2) / 0.8 * 40.0).round().max(0.0) as usize;
        t.row([format!("{k:.0}"), format!("{f:.3}"), "#".repeat(bar_len)]);
    }
    Ok(format!(
        "Figure 7: frequency settings from adaptive DVFS in the FP domain, epic_decode\n\n{}",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_shape_matches_figure7() {
        // Full-length run (1M instructions) is exercised in the
        // integration suite; here a scaled run checks the first dip.
        let cfg = RunConfig::quick().with_ops(250_000);
        let pts = series(&RunSet::new(1), &cfg).expect("valid run");
        assert!(!pts.is_empty());
        // Starts at f_max.
        assert!(pts[0].1 > 0.9);
        // Instruction axis is monotone.
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }
}
