//! Figures 10 and 11 (reconstructed): scheme comparison across all
//! benchmarks, and the fast-varying application group where the adaptive
//! scheme's reactive nature pays off.

use mcd_workloads::{registry, VariabilityClass};

use crate::error::RunError;
use crate::runner::{pct, Outcome, RunConfig, RunSet, Scheme};
use crate::table::Table;

/// Per-benchmark outcomes for every controlled scheme:
/// `(name, [adaptive, pid, attack/decay])`.
pub fn outcomes(
    rs: &RunSet,
    cfg: &RunConfig,
    names: &[&'static str],
) -> Result<Vec<(&'static str, [Outcome; 3])>, RunError> {
    // One work item per (benchmark, scheme) pair so a slow benchmark's
    // three runs spread over the pool instead of serializing.
    let mut tasks = Vec::with_capacity(names.len() * Scheme::CONTROLLED.len());
    for &name in names {
        for &scheme in &Scheme::CONTROLLED {
            tasks.push((name, scheme));
        }
    }
    let results = rs
        .par(tasks, |(name, scheme)| {
            let base = rs.baseline(name, cfg)?;
            Ok(Outcome::versus(&rs.run(name, scheme, cfg)?, &base))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;
    Ok(names
        .iter()
        .zip(results.chunks_exact(Scheme::CONTROLLED.len()))
        .map(|(&name, os)| (name, [os[0], os[1], os[2]]))
        .collect())
}

fn render(title: &str, rows: &[(&'static str, [Outcome; 3])]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "adaptive E",
        "adaptive T",
        "adaptive EDP",
        "PID EDP",
        "atk/decay EDP",
    ]);
    for (name, os) in rows {
        t.row([
            name.to_string(),
            pct(os[0].energy_savings),
            pct(os[0].perf_degradation),
            pct(os[0].edp_improvement),
            pct(os[1].edp_improvement),
            pct(os[2].edp_improvement),
        ]);
    }
    let mean =
        |i: usize| Outcome::mean(&rows.iter().map(|r| r.1[i]).collect::<Vec<_>>()).edp_improvement;
    let (a, p, d) = (mean(0), mean(1), mean(2));
    let mut out = format!("{title}\n\n{}", t.render());
    out.push_str(&format!(
        "\nMean EDP gain: adaptive {}, PID {}, attack/decay {}\n",
        pct(a),
        pct(p),
        pct(d)
    ));
    if p > 0.0 {
        out.push_str(&format!(
            "adaptive / PID EDP-gain ratio:        {:.2}x\n",
            a / p
        ));
    }
    if d > 0.0 {
        out.push_str(&format!(
            "adaptive / attack-decay EDP-gain ratio: {:.2}x\n",
            a / d
        ));
    } else {
        out.push_str("attack/decay mean EDP gain is non-positive on this set\n");
    }
    out
}

/// Figure 10: all benchmarks.
pub fn run(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let names: Vec<&'static str> = registry::all().iter().map(|s| s.name).collect();
    let rows = outcomes(rs, cfg, &names)?;
    Ok(render(
        "Figure 10 (reconstructed): EDP improvement by scheme, all benchmarks",
        &rows,
    ))
}

/// Figure 11: the fast-varying group only (paper: adaptive ≈8 % better
/// than PID and ≈3× attack/decay there).
pub fn run_fast_group(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let names: Vec<&'static str> = registry::by_variability(VariabilityClass::Fast)
        .iter()
        .map(|s| s.name)
        .collect();
    let rows = outcomes(rs, cfg, &names)?;
    Ok(render(
        "Figure 11 (reconstructed): fast-varying group (short-wavelength workloads)",
        &rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_cover_requested_benchmarks() {
        let cfg = RunConfig::quick().with_ops(15_000);
        let rs = RunSet::new(crate::parallel::default_jobs());
        let rows = outcomes(&rs, &cfg, &["adpcm_encode", "swim"]).expect("valid sweep");
        assert_eq!(rows.len(), 2);
        let text = render("t", &rows);
        assert!(text.contains("adpcm_encode") && text.contains("swim"));
    }
}
