//! Experiments beyond the paper's figures: the centralized-control
//! extension, the synchronization-interface comparison, the wavelength
//! sweep, the static-scaling bound, and the per-domain energy breakdown.

use mcd_adaptive::coordinated_controllers;
use mcd_baselines::FixedOperatingPoint;
use mcd_power::OpIndex;
use mcd_sim::{DomainId, Machine, SimResult, SyncModel};
use mcd_workloads::{registry, synthetic, TraceGenerator, VariabilityClass};

use crate::error::RunError;
use crate::runner::{controller_for, pct, Outcome, RunConfig, RunSet, Scheme};
use crate::table::Table;

/// Runs a spec (not necessarily registered) under a scheme, sharded at
/// `cfg.shard_ops` snapshot boundaries like every registry-backed run —
/// this is what lets the wavelength sweep's 4.8 M-instruction points
/// contribute segment-sized wall samples instead of one monster sample.
pub(crate) fn run_spec(
    spec: &mcd_workloads::BenchmarkSpec,
    scheme: Scheme,
    cfg: &RunConfig,
    sink: &mut dyn mcd_sim::TraceSink,
) -> Result<SimResult, RunError> {
    crate::runner::run_sharded(
        cfg.shard_ops,
        None,
        || {
            let trace =
                TraceGenerator::try_new(spec, cfg.ops, cfg.seed).map_err(RunError::Workload)?;
            let mut machine = Machine::try_new(cfg.sim.clone(), trace)?;
            for &d in &DomainId::BACKEND {
                if let Some(c) = controller_for(scheme, d, cfg) {
                    machine = machine.with_controller(d, c);
                }
            }
            Ok(machine)
        },
        sink,
    )
}

/// Wavelength sweep: how each scheme's EDP gain depends on the workload's
/// variation wavelength (square-wave FP/INT alternation, 40 % duty).
///
/// This is the design space behind the paper's fast/slow split: the
/// adaptive advantage concentrates where the wavelength is comparable to
/// (or shorter than) the fixed interval.
pub fn run_wavelength(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    const PERIODS: [u64; 7] = [5_000, 10_000, 20_000, 50_000, 100_000, 400_000, 1_600_000];
    const SCHEMES: [Scheme; 4] = [
        Scheme::Baseline,
        Scheme::Adaptive,
        Scheme::Pid,
        Scheme::AttackDecay,
    ];
    // Synthetic specs are not registry-backed, so the baseline memo cache
    // does not apply. The work items are the individual (period, scheme)
    // runs — flattened rather than one item per period — so the long
    // periods (the 1.6M-instruction point is ~60% of the sweep) spread
    // their four runs across workers instead of serializing on one. The
    // EDP comparison happens after the fan-out, on results regrouped in
    // input order, so reports stay byte-identical for any worker count.
    let mut items = Vec::with_capacity(PERIODS.len() * SCHEMES.len());
    for period in PERIODS {
        for scheme in SCHEMES {
            items.push((period, scheme));
        }
    }
    let runs = rs
        .par(items, |(period, scheme)| {
            let spec = synthetic::square_wave(period, 0.4);
            let mut c = cfg.clone();
            c.ops = cfg.ops.max(period * 3); // at least three full periods
            let label = format!(
                "wavelength|{period}|{}|ops={}|seed={}",
                scheme.name(),
                c.ops,
                c.seed
            );
            rs.run_custom(&label, |sink| run_spec(&spec, scheme, &c, sink))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;
    let mut t = Table::new([
        "wavelength (insts)",
        "adaptive EDP",
        "PID EDP",
        "atk/decay EDP",
    ]);
    // Items are period-major with the baseline first in each chunk.
    for (pi, &period) in PERIODS.iter().enumerate() {
        let chunk = &runs[pi * SCHEMES.len()..(pi + 1) * SCHEMES.len()];
        let edp = |si: usize| pct(Outcome::versus(&chunk[si], &chunk[0]).edp_improvement);
        t.row([period.to_string(), edp(1), edp(2), edp(3)]);
    }
    Ok(format!(
        "Extension: EDP gain vs workload-variation wavelength (square-wave FP/INT)\n\n{}\n\
         Reading guide: at wavelengths near 2x the fixed interval (20k insts) the\n\
         PID averages away the swing it is riding — the paper's motivating\n\
         half-interval scenario — while the adaptive scheme stays non-negative.\n\
         Full-range square waves are hostile to everyone in the middle of the\n\
         sweep, where each phase is comparable to the ~55 us regulator slew; only\n\
         the adaptive scheme turns positive again at very long wavelengths. The\n\
         fixed-interval schemes recover late because their instruction-framed\n\
         intervals stretch in wall-clock time exactly when the domain is slow.\n",
        t.render()
    ))
}

/// Synchronization-interface comparison (Section 2's two families):
/// arbitration window vs token-ring FIFO vs an ideal zero-cost interface.
pub fn run_sync(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    const INTERFACES: [(&str, SyncModel, u64); 3] = [
        ("arbitration 300ps", SyncModel::Arbitration, 300),
        ("token-ring FIFO", SyncModel::TokenRing, 300),
        ("ideal (no sync)", SyncModel::Arbitration, 0),
    ];
    let mut tasks = Vec::new();
    for name in ["gzip", "mpeg2_decode"] {
        for interface in INTERFACES {
            tasks.push((name, interface));
        }
    }
    let rows = rs
        .par(tasks, |(name, (label, model, window))| {
            // The ideal baseline doubles as the "ideal (no sync)" row's own
            // baseline, so the memo cache collapses the two.
            let mut ideal = cfg.clone();
            ideal.sim.sync_window = mcd_power::TimePs::new(0);
            ideal.sim.jitter_sigma_ps = 0.0;
            let ideal_base = rs.baseline(name, &ideal)?;
            let mut c = cfg.clone();
            c.sim.sync_model = model;
            c.sim.sync_window = mcd_power::TimePs::new(window);
            c.sim.jitter_sigma_ps = 0.0;
            let base = rs.baseline(name, &c)?;
            let adaptive = rs.run(name, Scheme::Adaptive, &c)?;
            Ok([
                label.to_string(),
                name.to_string(),
                pct(base.sim_time.as_secs() / ideal_base.sim_time.as_secs() - 1.0),
                pct(adaptive.edp_improvement_vs(&base)),
            ])
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;
    let mut t = Table::new([
        "interface",
        "benchmark",
        "time vs ideal",
        "adaptive EDP gain",
    ]);
    for row in rows {
        t.row(row);
    }
    Ok(format!(
        "Extension: synchronization-interface families (Section 2)\n\n{}",
        t.render()
    ))
}

/// The centralized-control extension (the paper's future work): shared
/// blackboard vetoing down-steps while another domain is the bottleneck.
pub fn run_centralized(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let names: Vec<&'static str> = registry::by_variability(VariabilityClass::Fast)
        .iter()
        .map(|s| s.name)
        .collect();
    let pairs = rs
        .par(names, |name| {
            let spec = registry::by_name(name)
                .ok_or_else(|| RunError::Workload(format!("unknown benchmark {name}")))?;
            let base = rs.baseline(name, cfg)?;
            let dec = Outcome::versus(&rs.run(name, Scheme::Adaptive, cfg)?, &base);
            let label = format!("centralized|{name}|ops={}|seed={}", cfg.ops, cfg.seed);
            let cen_result = rs.run_custom(&label, |sink| {
                let trace = TraceGenerator::try_new(&spec, cfg.ops, cfg.seed)
                    .map_err(RunError::Workload)?;
                Ok(Machine::try_new(cfg.sim.clone(), trace)?
                    .with_controllers(coordinated_controllers())
                    .try_run_traced(sink)?)
            })?;
            let cen = Outcome::versus(&cen_result, &base);
            Ok((name, dec, cen))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;
    let mut t = Table::new([
        "Benchmark",
        "decentralized E",
        "decentralized T",
        "decentralized EDP",
        "centralized E",
        "centralized T",
        "centralized EDP",
    ]);
    let mut dec_all = Vec::new();
    let mut cen_all = Vec::new();
    for (name, dec, cen) in pairs {
        t.row([
            name.to_string(),
            pct(dec.energy_savings),
            pct(dec.perf_degradation),
            pct(dec.edp_improvement),
            pct(cen.energy_savings),
            pct(cen.perf_degradation),
            pct(cen.edp_improvement),
        ]);
        dec_all.push(dec);
        cen_all.push(cen);
    }
    let dm = Outcome::mean(&dec_all);
    let cm = Outcome::mean(&cen_all);
    Ok(format!(
        "Extension: centralized coordination (paper's future work), fast group\n\n{}\n\
         Mean: decentralized EDP {} vs centralized EDP {}\n",
        t.render(),
        pct(dm.edp_improvement),
        pct(cm.edp_improvement)
    ))
}

/// Static per-domain scaling bound: the best fixed operating point found
/// by a per-domain coarse search (what an oracle *static* assignment
/// achieves, contrasting with dynamic control).
pub fn run_static(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let grid = [0u16, 80, 160, 240, 320];
    // The greedy search is inherently sequential per benchmark (each
    // domain's winner feeds the next domain's sweep), so the benchmarks
    // themselves are the parallel work items.
    let names = ["adpcm_encode", "gzip", "wupwise", "mpeg2_decode"];
    let rows = rs
        .par(names.to_vec(), |name| {
            let spec = registry::by_name(name)
                .ok_or_else(|| RunError::Workload(format!("unknown benchmark {name}")))?;
            let base = rs.baseline(name, cfg)?;
            let run_at = |points: [OpIndex; 3]| -> Result<SimResult, RunError> {
                let label = format!(
                    "static|{name}|{}/{}/{}|ops={}|seed={}",
                    points[0].0, points[1].0, points[2].0, cfg.ops, cfg.seed
                );
                rs.run_custom(&label, |sink| {
                    let trace = TraceGenerator::try_new(&spec, cfg.ops, cfg.seed)
                        .map_err(RunError::Workload)?;
                    let mut m = Machine::try_new(cfg.sim.clone(), trace)?;
                    for &dd in &DomainId::BACKEND {
                        m = m.with_controller(
                            dd,
                            Box::new(FixedOperatingPoint(points[dd.backend_index()])),
                        );
                    }
                    Ok(m.try_run_traced(sink)?)
                })
            };
            // Greedy per-domain search (domains are weakly coupled, Section 3).
            let mut best = [OpIndex(320); 3];
            for &d in &DomainId::BACKEND {
                let mut best_edp = f64::MIN;
                let mut best_idx = OpIndex(320);
                for &idx in &grid {
                    let mut points = best;
                    points[d.backend_index()] = OpIndex(idx);
                    let edp = run_at(points)?.edp_improvement_vs(&base);
                    if edp > best_edp {
                        best_edp = edp;
                        best_idx = OpIndex(idx);
                    }
                }
                best[d.backend_index()] = best_idx;
            }
            let static_edp = run_at(best)?.edp_improvement_vs(&base);
            let adaptive_edp = rs
                .run(name, Scheme::Adaptive, cfg)?
                .edp_improvement_vs(&base);
            Ok([
                name.to_string(),
                format!("{}/{}/{}", best[0].0, best[1].0, best[2].0),
                pct(static_edp),
                pct(adaptive_edp),
            ])
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;
    let mut t = Table::new([
        "Benchmark",
        "best static (INT/FP/LS idx)",
        "static EDP",
        "adaptive EDP",
    ]);
    for row in rows {
        t.row(row);
    }
    Ok(format!(
        "Extension: best static per-domain operating points vs dynamic adaptive control\n\n{}",
        t.render()
    ))
}

/// Per-domain, per-category energy breakdown: where the savings come from.
pub fn run_energy_breakdown(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let results = rs
        .par(vec!["adpcm_encode", "swim"], |name| {
            let base = rs.baseline(name, cfg)?;
            let adap = rs.run(name, Scheme::Adaptive, cfg)?;
            Ok((name, base, adap))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;
    let mut out = String::from("Extension: per-domain energy breakdown (baseline vs adaptive)\n");
    for (name, base, adap) in results {
        out.push_str(&format!("\n{name}:\n"));
        let mut t = Table::new([
            "domain",
            "clock (b)",
            "clock (a)",
            "compute (b)",
            "compute (a)",
            "memory (b)",
            "memory (a)",
            "pipeline (b)",
            "pipeline (a)",
        ]);
        for &d in &DomainId::ALL {
            let b = base.domain(d).energy;
            let a = adap.domain(d).energy;
            let uj = |e: mcd_power::Energy| format!("{:.2}uJ", e.as_joules() * 1e6);
            t.row([
                format!("{d}"),
                uj(b.clock),
                uj(a.clock),
                uj(b.compute),
                uj(a.compute),
                uj(b.memory),
                uj(a.memory),
                uj(b.pipeline),
                uj(a.pipeline),
            ]);
        }
        out.push_str(&t.render());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_experiment_lists_all_interfaces() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let out = run_sync(&rs, &RunConfig::quick().with_ops(10_000)).expect("valid sweep");
        assert!(out.contains("arbitration 300ps"));
        assert!(out.contains("token-ring FIFO"));
        assert!(out.contains("ideal (no sync)"));
    }

    #[test]
    fn centralized_experiment_renders() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let out = run_centralized(&rs, &RunConfig::quick().with_ops(10_000)).expect("valid sweep");
        assert!(out.contains("centralized EDP"));
    }

    #[test]
    fn energy_breakdown_covers_all_domains() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let out =
            run_energy_breakdown(&rs, &RunConfig::quick().with_ops(10_000)).expect("valid sweep");
        for d in ["front-end", "INT", "FP", "LS"] {
            assert!(out.contains(d), "missing {d}");
        }
    }
}
