//! Experiments beyond the paper's figures: the centralized-control
//! extension, the synchronization-interface comparison, the wavelength
//! sweep, the static-scaling bound, and the per-domain energy breakdown.

use mcd_adaptive::coordinated_controllers;
use mcd_baselines::FixedOperatingPoint;
use mcd_power::OpIndex;
use mcd_sim::{DomainId, Machine, SimResult, SyncModel};
use mcd_workloads::{registry, synthetic, TraceGenerator, VariabilityClass};

use crate::runner::{controller_for, pct, run as run_sim, Outcome, RunConfig, Scheme};
use crate::table::Table;

/// Runs a spec (not necessarily registered) under a scheme.
fn run_spec(spec: &mcd_workloads::BenchmarkSpec, scheme: Scheme, cfg: &RunConfig) -> SimResult {
    let mut machine = Machine::new(
        cfg.sim.clone(),
        TraceGenerator::new(spec, cfg.ops, cfg.seed),
    );
    for &d in &DomainId::BACKEND {
        if let Some(c) = controller_for(scheme, d, cfg) {
            machine = machine.with_controller(d, c);
        }
    }
    machine.run()
}

/// Wavelength sweep: how each scheme's EDP gain depends on the workload's
/// variation wavelength (square-wave FP/INT alternation, 40 % duty).
///
/// This is the design space behind the paper's fast/slow split: the
/// adaptive advantage concentrates where the wavelength is comparable to
/// (or shorter than) the fixed interval.
pub fn run_wavelength(cfg: &RunConfig) -> String {
    let mut t = Table::new([
        "wavelength (insts)",
        "adaptive EDP",
        "PID EDP",
        "atk/decay EDP",
    ]);
    for period in [
        5_000u64, 10_000, 20_000, 50_000, 100_000, 400_000, 1_600_000,
    ] {
        let spec = synthetic::square_wave(period, 0.4);
        let ops = cfg.ops.max(period * 3); // at least three full periods
        let mut c = cfg.clone();
        c.ops = ops;
        let base = run_spec(&spec, Scheme::Baseline, &c);
        let edp = |scheme| Outcome::versus(&run_spec(&spec, scheme, &c), &base).edp_improvement;
        t.row([
            period.to_string(),
            pct(edp(Scheme::Adaptive)),
            pct(edp(Scheme::Pid)),
            pct(edp(Scheme::AttackDecay)),
        ]);
    }
    format!(
        "Extension: EDP gain vs workload-variation wavelength (square-wave FP/INT)\n\n{}\n\
         Reading guide: at wavelengths near 2x the fixed interval (20k insts) the\n\
         PID averages away the swing it is riding — the paper's motivating\n\
         half-interval scenario — while the adaptive scheme stays non-negative.\n\
         Full-range square waves are hostile to everyone in the middle of the\n\
         sweep, where each phase is comparable to the ~55 us regulator slew; only\n\
         the adaptive scheme turns positive again at very long wavelengths. The\n\
         fixed-interval schemes recover late because their instruction-framed\n\
         intervals stretch in wall-clock time exactly when the domain is slow.\n",
        t.render()
    )
}

/// Synchronization-interface comparison (Section 2's two families):
/// arbitration window vs token-ring FIFO vs an ideal zero-cost interface.
pub fn run_sync(cfg: &RunConfig) -> String {
    let mut t = Table::new([
        "interface",
        "benchmark",
        "time vs ideal",
        "adaptive EDP gain",
    ]);
    for name in ["gzip", "mpeg2_decode"] {
        let mut ideal = cfg.clone();
        ideal.sim.sync_window = mcd_power::TimePs::new(0);
        ideal.sim.jitter_sigma_ps = 0.0;
        let ideal_base = run_sim(name, Scheme::Baseline, &ideal);
        for (label, model, window) in [
            ("arbitration 300ps", SyncModel::Arbitration, 300u64),
            ("token-ring FIFO", SyncModel::TokenRing, 300),
            ("ideal (no sync)", SyncModel::Arbitration, 0),
        ] {
            let mut c = cfg.clone();
            c.sim.sync_model = model;
            c.sim.sync_window = mcd_power::TimePs::new(window);
            c.sim.jitter_sigma_ps = 0.0;
            let base = run_sim(name, Scheme::Baseline, &c);
            let adaptive = run_sim(name, Scheme::Adaptive, &c);
            t.row([
                label.to_string(),
                name.to_string(),
                pct(base.sim_time.as_secs() / ideal_base.sim_time.as_secs() - 1.0),
                pct(adaptive.edp_improvement_vs(&base)),
            ]);
        }
    }
    format!(
        "Extension: synchronization-interface families (Section 2)\n\n{}",
        t.render()
    )
}

/// The centralized-control extension (the paper's future work): shared
/// blackboard vetoing down-steps while another domain is the bottleneck.
pub fn run_centralized(cfg: &RunConfig) -> String {
    let mut t = Table::new([
        "Benchmark",
        "decentralized E",
        "decentralized T",
        "decentralized EDP",
        "centralized E",
        "centralized T",
        "centralized EDP",
    ]);
    let names: Vec<&'static str> = registry::by_variability(VariabilityClass::Fast)
        .iter()
        .map(|s| s.name)
        .collect();
    let mut dec_all = Vec::new();
    let mut cen_all = Vec::new();
    for name in names {
        let spec = registry::by_name(name).expect("registered");
        let base = run_sim(name, Scheme::Baseline, cfg);
        let dec = Outcome::versus(&run_sim(name, Scheme::Adaptive, cfg), &base);
        let cen_result = Machine::new(
            cfg.sim.clone(),
            TraceGenerator::new(&spec, cfg.ops, cfg.seed),
        )
        .with_controllers(coordinated_controllers())
        .run();
        let cen = Outcome::versus(&cen_result, &base);
        t.row([
            name.to_string(),
            pct(dec.energy_savings),
            pct(dec.perf_degradation),
            pct(dec.edp_improvement),
            pct(cen.energy_savings),
            pct(cen.perf_degradation),
            pct(cen.edp_improvement),
        ]);
        dec_all.push(dec);
        cen_all.push(cen);
    }
    let dm = Outcome::mean(&dec_all);
    let cm = Outcome::mean(&cen_all);
    format!(
        "Extension: centralized coordination (paper's future work), fast group\n\n{}\n\
         Mean: decentralized EDP {} vs centralized EDP {}\n",
        t.render(),
        pct(dm.edp_improvement),
        pct(cm.edp_improvement)
    )
}

/// Static per-domain scaling bound: the best fixed operating point found
/// by a per-domain coarse search (what an oracle *static* assignment
/// achieves, contrasting with dynamic control).
pub fn run_static(cfg: &RunConfig) -> String {
    let grid = [0u16, 80, 160, 240, 320];
    let mut t = Table::new([
        "Benchmark",
        "best static (INT/FP/LS idx)",
        "static EDP",
        "adaptive EDP",
    ]);
    for name in ["adpcm_encode", "gzip", "wupwise", "mpeg2_decode"] {
        let spec = registry::by_name(name).expect("registered");
        let base = run_sim(name, Scheme::Baseline, cfg);
        // Greedy per-domain search (domains are weakly coupled, Section 3).
        let mut best = [OpIndex(320); 3];
        for &d in &DomainId::BACKEND {
            let mut best_edp = f64::MIN;
            let mut best_idx = OpIndex(320);
            for &idx in &grid {
                let mut points = best;
                points[d.backend_index()] = OpIndex(idx);
                let mut m = Machine::new(
                    cfg.sim.clone(),
                    TraceGenerator::new(&spec, cfg.ops, cfg.seed),
                );
                for &dd in &DomainId::BACKEND {
                    m = m.with_controller(
                        dd,
                        Box::new(FixedOperatingPoint(points[dd.backend_index()])),
                    );
                }
                let edp = m.run().edp_improvement_vs(&base);
                if edp > best_edp {
                    best_edp = edp;
                    best_idx = OpIndex(idx);
                }
            }
            best[d.backend_index()] = best_idx;
        }
        let mut m = Machine::new(
            cfg.sim.clone(),
            TraceGenerator::new(&spec, cfg.ops, cfg.seed),
        );
        for &dd in &DomainId::BACKEND {
            m = m.with_controller(dd, Box::new(FixedOperatingPoint(best[dd.backend_index()])));
        }
        let static_edp = m.run().edp_improvement_vs(&base);
        let adaptive_edp = run_sim(name, Scheme::Adaptive, cfg).edp_improvement_vs(&base);
        t.row([
            name.to_string(),
            format!("{}/{}/{}", best[0].0, best[1].0, best[2].0),
            pct(static_edp),
            pct(adaptive_edp),
        ]);
    }
    format!(
        "Extension: best static per-domain operating points vs dynamic adaptive control\n\n{}",
        t.render()
    )
}

/// Per-domain, per-category energy breakdown: where the savings come from.
pub fn run_energy_breakdown(cfg: &RunConfig) -> String {
    let mut out = String::from("Extension: per-domain energy breakdown (baseline vs adaptive)\n");
    for name in ["adpcm_encode", "swim"] {
        let base = run_sim(name, Scheme::Baseline, cfg);
        let adap = run_sim(name, Scheme::Adaptive, cfg);
        out.push_str(&format!("\n{name}:\n"));
        let mut t = Table::new([
            "domain",
            "clock (b)",
            "clock (a)",
            "compute (b)",
            "compute (a)",
            "memory (b)",
            "memory (a)",
            "pipeline (b)",
            "pipeline (a)",
        ]);
        for &d in &DomainId::ALL {
            let b = base.domain(d).energy;
            let a = adap.domain(d).energy;
            let uj = |e: mcd_power::Energy| format!("{:.2}uJ", e.as_joules() * 1e6);
            t.row([
                format!("{d}"),
                uj(b.clock),
                uj(a.clock),
                uj(b.compute),
                uj(a.compute),
                uj(b.memory),
                uj(a.memory),
                uj(b.pipeline),
                uj(a.pipeline),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_experiment_lists_all_interfaces() {
        let out = run_sync(&RunConfig::quick().with_ops(10_000));
        assert!(out.contains("arbitration 300ps"));
        assert!(out.contains("token-ring FIFO"));
        assert!(out.contains("ideal (no sync)"));
    }

    #[test]
    fn centralized_experiment_renders() {
        let out = run_centralized(&RunConfig::quick().with_ops(10_000));
        assert!(out.contains("centralized EDP"));
    }

    #[test]
    fn energy_breakdown_covers_all_domains() {
        let out = run_energy_breakdown(&RunConfig::quick().with_ops(10_000));
        for d in ["front-end", "INT", "FP", "LS"] {
            assert!(out.contains(d), "missing {d}");
        }
    }
}
