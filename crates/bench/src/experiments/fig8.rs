//! Figure 8: variance spectrum of the INT-queue occupancy for
//! `epic_decode`, with the fast-variation band marked.

use mcd_analysis::spectrum::multitaper;
use mcd_analysis::WorkloadClassifier;
use mcd_sim::DomainId;

use crate::error::RunError;
use crate::runner::{RunConfig, RunSet};
use crate::table::Table;

/// The log-spaced spectrum series: (wavelength in sampling periods,
/// variance density in entries²/Hz-equivalent units).
pub fn series(rs: &RunSet, cfg: &RunConfig) -> Result<Vec<(f64, f64)>, RunError> {
    let mut run_cfg = cfg.clone();
    run_cfg.traces = true;
    let result = rs.baseline("epic_decode", &run_cfg)?;
    let occupancy = result
        .metrics
        .occupancy_series(DomainId::Int.backend_index());
    let spectrum = multitaper(&occupancy, 4);
    // Downsample the one-sided spectrum onto ~40 log-spaced wavelengths.
    let max_wavelength = occupancy.len() as f64;
    let mut points = Vec::new();
    let mut lambda = 4.0;
    while lambda < max_wavelength {
        let f_hi = 1.0 / lambda;
        let f_lo = 1.0 / (lambda * 1.3);
        let (mut sum, mut n) = (0.0, 0u32);
        for (k, d) in spectrum.density.iter().enumerate().skip(1) {
            let f = spectrum.frequency(k);
            if f >= f_lo && f <= f_hi {
                sum += d;
                n += 1;
            }
        }
        if n > 0 {
            points.push((lambda, sum / n as f64));
        }
        lambda *= 1.3;
    }
    Ok(points)
}

/// Renders the Figure 8 spectrum.
pub fn run(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let pts = series(rs, cfg)?;
    let classifier = WorkloadClassifier::default();
    let max_d = pts.iter().map(|p| p.1).fold(f64::MIN_POSITIVE, f64::max);
    let mut t = Table::new(["wavelength (samples)", "variance density", "", "band"]);
    for (lambda, d) in &pts {
        let bar = ((d / max_d).sqrt() * 40.0).round() as usize;
        let in_band =
            *lambda >= classifier.fast_min_wavelength && *lambda <= classifier.fast_max_wavelength;
        t.row([
            format!("{lambda:.0}"),
            format!("{d:.4}"),
            "#".repeat(bar),
            if in_band { "<- fast" } else { "" }.to_string(),
        ]);
    }
    Ok(format!(
        "Figure 8: variance spectrum of INT-queue occupancy, epic_decode\n\
         (dotted band in the paper = wavelengths {:.0}-{:.0} samples)\n\n{}",
        classifier.fast_min_wavelength,
        classifier.fast_max_wavelength,
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_series_is_log_spaced_and_positive() {
        let pts = series(&RunSet::new(1), &RunConfig::quick().with_ops(60_000)).expect("valid run");
        assert!(pts.len() > 10);
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0, "wavelengths must increase");
        }
        assert!(pts.iter().all(|p| p.1 >= 0.0));
    }
}
