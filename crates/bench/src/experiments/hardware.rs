//! The Section 3 hardware-cost comparison: the adaptive decision logic
//! versus the fixed-interval schemes' per-interval computation hardware.

use mcd_adaptive::SchemeHardware;

use crate::table::Table;

/// Renders the gate-estimate comparison.
pub fn run() -> String {
    let mut t = Table::new([
        "Scheme",
        "adder bits",
        "cmp bits",
        "counter bits",
        "reg bits",
        "FSM states",
        "multipliers",
        "LUT bits",
        "~gates",
    ]);
    for scheme in SchemeHardware::ALL {
        let c = scheme.cost();
        t.row([
            scheme.name().to_string(),
            c.adder_bits.to_string(),
            c.comparator_bits.to_string(),
            c.counter_bits.to_string(),
            c.register_bits.to_string(),
            c.fsm_states.to_string(),
            format!("{:?}", c.multiplier_bits),
            c.lut_bits.to_string(),
            c.gate_estimate().to_string(),
        ]);
    }
    let adaptive = SchemeHardware::Adaptive.gates() as f64;
    let pid = SchemeHardware::Pid.gates() as f64;
    format!(
        "Section 3: per-domain decision-logic hardware (Figure 5 inventory)\n\n{}\n\
         The adaptive logic is ~{:.0}x smaller than the PID scheme's\n\
         (which needs multipliers and a mapping table per interval).\n",
        t.render(),
        pid / adaptive
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_shows_adaptive_advantage() {
        let out = super::run();
        assert!(out.contains("adaptive (this paper)"));
        assert!(out.contains("smaller than the PID"));
    }
}
