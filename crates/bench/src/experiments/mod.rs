//! One module per reproduced artifact (see DESIGN.md §3 for the index).

pub mod ablations;
pub mod bakeoff;
pub mod extensions;
pub mod fig7;
pub mod fig8;
pub mod hardware;
pub mod headline;
pub mod intervals;
pub mod schemes;
pub mod stability;
pub mod table1;
pub mod table2;

use crate::error::RunError;
use crate::runner::{RunConfig, RunSet};

/// Every experiment id accepted by the `repro` binary.
pub const ALL: [&str; 22] = [
    "table1",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table3",
    "stability",
    "overshoot",
    "sampling",
    "bandwidth",
    "hardware",
    "ablate-qref",
    "ablate-step",
    "ablate-wavelength",
    "ablate-sync",
    "ablate-static",
    "ext-centralized",
    "energy-breakdown",
    "bakeoff",
    "resonance",
];

/// What an experiment does with the machine: drives cycle-level
/// simulations, or evaluates closed-form / tabulated analysis only.
///
/// The benchmark-regression gate keys off this: analysis experiments run
/// zero simulations, so their throughput numbers are meaningless and
/// their wall-clock is pure formatting noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Runs cycle-level simulations on the [`RunSet`].
    Simulation,
    /// Closed-form or tabulated analysis; no simulations.
    Analysis,
}

impl Kind {
    /// Lower-case label used in the bench JSON record.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Simulation => "simulation",
            Kind::Analysis => "analysis",
        }
    }
}

/// Classifies an experiment id (see [`Kind`]); `None` for unknown ids.
pub fn kind(id: &str) -> Option<Kind> {
    match id {
        "table1" | "stability" | "overshoot" | "sampling" | "bandwidth" | "hardware" => {
            Some(Kind::Analysis)
        }
        other if ALL.contains(&other) => Some(Kind::Simulation),
        _ => None,
    }
}

/// Runs the experiment named `id` on the process-wide [`RunSet`] and
/// returns its report, or a typed [`RunError`] describing why it could
/// not be produced (unknown id, bad configuration, diverged run, …).
pub fn run(id: &str, cfg: &RunConfig) -> Result<String, RunError> {
    run_on(RunSet::global(), id, cfg)
}

/// Runs the experiment named `id` on an explicit [`RunSet`] — the entry
/// point for tests that compare worker counts or isolate caches.
pub fn run_on(rs: &RunSet, id: &str, cfg: &RunConfig) -> Result<String, RunError> {
    crate::fault::injected_fault(id)?;
    match id {
        "table1" => Ok(table1::run(cfg)),
        "table2" => table2::run(rs, cfg),
        "fig7" => fig7::run(rs, cfg),
        "fig8" => fig8::run(rs, cfg),
        "fig9" => headline::run(rs, cfg),
        "fig10" => schemes::run(rs, cfg),
        "fig11" => schemes::run_fast_group(rs, cfg),
        "table3" => intervals::run(rs, cfg),
        "stability" => Ok(stability::run_roots()),
        "overshoot" => Ok(stability::run_overshoot()),
        "sampling" => Ok(stability::run_sampling()),
        "bandwidth" => Ok(stability::run_bandwidth()),
        "hardware" => Ok(hardware::run()),
        "ablate-qref" => ablations::run_qref(rs, cfg),
        "ablate-step" => ablations::run_step(rs, cfg),
        "ablate-wavelength" => extensions::run_wavelength(rs, cfg),
        "ablate-sync" => extensions::run_sync(rs, cfg),
        "ablate-static" => extensions::run_static(rs, cfg),
        "ext-centralized" => extensions::run_centralized(rs, cfg),
        "energy-breakdown" => extensions::run_energy_breakdown(rs, cfg),
        "bakeoff" => bakeoff::run(rs, cfg),
        "resonance" => bakeoff::run_resonance(rs, cfg),
        other => Err(RunError::Config(format!("unknown experiment id {other}"))),
    }
}
