//! One module per reproduced artifact (see DESIGN.md §3 for the index).

pub mod ablations;
pub mod extensions;
pub mod fig7;
pub mod fig8;
pub mod hardware;
pub mod headline;
pub mod intervals;
pub mod schemes;
pub mod stability;
pub mod table1;
pub mod table2;

use crate::runner::RunConfig;

/// Every experiment id accepted by the `repro` binary.
pub const ALL: [&str; 20] = [
    "table1",
    "table2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "table3",
    "stability",
    "overshoot",
    "sampling",
    "bandwidth",
    "hardware",
    "ablate-qref",
    "ablate-step",
    "ablate-wavelength",
    "ablate-sync",
    "ablate-static",
    "ext-centralized",
    "energy-breakdown",
];

/// Runs the experiment named `id` and returns its report.
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn run(id: &str, cfg: &RunConfig) -> String {
    match id {
        "table1" => table1::run(cfg),
        "table2" => table2::run(cfg),
        "fig7" => fig7::run(cfg),
        "fig8" => fig8::run(cfg),
        "fig9" => headline::run(cfg),
        "fig10" => schemes::run(cfg),
        "fig11" => schemes::run_fast_group(cfg),
        "table3" => intervals::run(cfg),
        "stability" => stability::run_roots(),
        "overshoot" => stability::run_overshoot(),
        "sampling" => stability::run_sampling(),
        "bandwidth" => stability::run_bandwidth(),
        "hardware" => hardware::run(),
        "ablate-qref" => ablations::run_qref(cfg),
        "ablate-step" => ablations::run_step(cfg),
        "ablate-wavelength" => extensions::run_wavelength(cfg),
        "ablate-sync" => extensions::run_sync(cfg),
        "ablate-static" => extensions::run_static(cfg),
        "ext-centralized" => extensions::run_centralized(cfg),
        "energy-breakdown" => extensions::run_energy_breakdown(cfg),
        other => panic!("unknown experiment id {other}"),
    }
}
