//! Table 1: the full simulation-parameter record.

use crate::runner::RunConfig;
use crate::table::Table;

/// Prints the active configuration in the shape of the paper's Table 1.
pub fn run(cfg: &RunConfig) -> String {
    let s = &cfg.sim;
    let curve = &s.vf_curve;
    let mut t = Table::new(["Simulation parameter", "Value"]);
    t.row([
        "Domain frequency range".to_string(),
        format!("{} - {}", curve.min().frequency, curve.max().frequency),
    ]);
    t.row([
        "Domain voltage range".to_string(),
        format!("{} - {}", curve.min().voltage, curve.max().voltage),
    ]);
    t.row([
        "Frequency/voltage change speed".to_string(),
        format!("{:.1} ns/MHz", s.dvfs_style.ns_per_mhz()),
    ]);
    t.row([
        "Signal sampling rate".to_string(),
        format!("{:.0} MHz", 1e12 / s.sample_period.as_ps() as f64 / 1e6),
    ]);
    t.row([
        "Step size (f/V)".to_string(),
        format!(
            "{} / {:.2} mV",
            curve.freq_step(),
            curve.volt_step().as_mv()
        ),
    ]);
    t.row([
        "Reference queue point".to_string(),
        "6 INT, 4 FP, 4 LS".to_string(),
    ]);
    t.row([
        "Time delays (sampling)".to_string(),
        "T_l0 = 8, T_m0 = 50".to_string(),
    ]);
    t.row([
        "Deviation window (DW)".to_string(),
        "+-1 (q-q_ref), 0 (dq)".to_string(),
    ]);
    t.row([
        "Domain clock jitter".to_string(),
        format!("+-{:.0} ps, normally distributed", 3.0 * s.jitter_sigma_ps),
    ]);
    t.row([
        "Inter-domain synchro window".to_string(),
        format!("{} ps", s.sync_window.as_ps()),
    ]);
    t.row([
        "Decode/Issue/Retire width".to_string(),
        format!("{}/{}/{}", s.decode_width, s.issue_width, s.retire_width),
    ]);
    t.row([
        "L1 data cache".to_string(),
        format!("{} KB, {}-way", s.l1d_bytes / 1024, s.l1d_assoc),
    ]);
    t.row([
        "L1 instr cache".to_string(),
        format!("{} KB, {}-way", s.l1i_bytes / 1024, s.l1i_assoc),
    ]);
    t.row([
        "L2 unified cache".to_string(),
        format!(
            "{} MB, {}",
            s.l2_bytes / (1024 * 1024),
            if s.l2_assoc == 1 {
                "direct mapped".to_string()
            } else {
                format!("{}-way", s.l2_assoc)
            }
        ),
    ]);
    t.row([
        "Cache access time".to_string(),
        format!("{} cycles L1, {} cycles L2", s.l1_latency, s.l2_latency),
    ]);
    t.row([
        "Memory access latency".to_string(),
        format!(
            "{:.0} ns first chunk, {:.0} ns inter",
            s.mem_first_chunk.as_ns(),
            s.mem_inter_chunk.as_ns()
        ),
    ]);
    t.row([
        "Integer ALUs".to_string(),
        format!("{} + {} mult/div unit", s.int_alus, s.int_muls),
    ]);
    t.row([
        "Floating-point ALUs".to_string(),
        format!("{} + {} mult/div/sqrt unit", s.fp_alus, s.fp_muls),
    ]);
    t.row([
        "Issue queue size".to_string(),
        format!("{} INT, {} FP, {} LS", s.int_queue, s.fp_queue, s.ls_queue),
    ]);
    t.row(["Reorder buffer size".to_string(), s.rob_size.to_string()]);
    t.row([
        "Physical register file size".to_string(),
        format!("{} INT, {} FP", s.int_regs, s.fp_regs),
    ]);
    t.row([
        "Branch predictor".to_string(),
        "bimodal 1024 + 2-level (hist 10, 1024) + chooser 4096".to_string(),
    ]);
    format!(
        "Table 1: Summary of All Simulation Parameters\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_key_parameters() {
        let out = run(&RunConfig::quick());
        for needle in [
            "250.000 MHz",
            "1000.000 MHz",
            "73.3 ns/MHz",
            "T_l0 = 8, T_m0 = 50",
            "300 ps",
            "4/6/11",
            "20 INT, 16 FP, 16 LS",
            "72 INT, 72 FP",
            "80 ns first chunk",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
    }
}
