//! Figure 9 (reconstructed): per-benchmark energy savings and performance
//! degradation of the adaptive scheme versus the full-speed MCD baseline.
//!
//! The paper's headline: ≈9 % energy savings at ≈3 % performance
//! degradation on average, with q_ref chosen to keep degradation near 5 %.

use mcd_workloads::registry;

use crate::error::RunError;
use crate::runner::{pct, Outcome, RunConfig, RunSet, Scheme};
use crate::table::Table;

/// Per-benchmark adaptive-vs-baseline outcomes.
pub fn outcomes(
    rs: &RunSet,
    cfg: &RunConfig,
) -> Result<Vec<(&'static str, String, Outcome)>, RunError> {
    rs.par(registry::all(), |spec| {
        let base = rs.baseline(spec.name, cfg)?;
        let adaptive = rs.run(spec.name, Scheme::Adaptive, cfg)?;
        Ok((
            spec.name,
            spec.suite.to_string(),
            Outcome::versus(&adaptive, &base),
        ))
    })
    .into_iter()
    .collect()
}

/// Renders Figure 9.
pub fn run(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let rows = outcomes(rs, cfg)?;
    let mut t = Table::new([
        "Benchmark",
        "Suite",
        "Energy savings",
        "Perf degradation",
        "EDP gain",
    ]);
    for (name, suite, o) in &rows {
        t.row([
            name.to_string(),
            suite.clone(),
            pct(o.energy_savings),
            pct(o.perf_degradation),
            pct(o.edp_improvement),
        ]);
    }
    let all: Vec<Outcome> = rows.iter().map(|r| r.2).collect();
    let mean = Outcome::mean(&all);
    let mut out = format!(
        "Figure 9 (reconstructed): adaptive DVFS vs full-speed MCD baseline\n\n{}",
        t.render()
    );
    out.push_str(&format!(
        "\nAverage: {} energy savings, {} performance degradation, {} EDP gain\n\
         (paper: ~9% energy savings, ~3% performance degradation on average)\n",
        pct(mean.energy_savings),
        pct(mean.perf_degradation),
        pct(mean.edp_improvement)
    ));
    for suite in ["MediaBench", "SPEC2000int", "SPEC2000fp"] {
        let subset: Vec<Outcome> = rows.iter().filter(|r| r.1 == suite).map(|r| r.2).collect();
        let m = Outcome::mean(&subset);
        out.push_str(&format!(
            "  {suite:12}: {} energy, {} perf, {} EDP\n",
            pct(m.energy_savings),
            pct(m.perf_degradation),
            pct(m.edp_improvement)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_headline_covers_all_benchmarks() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let rows = outcomes(&rs, &RunConfig::quick().with_ops(20_000)).expect("valid sweep");
        assert_eq!(rows.len(), 17);
        for (name, _, o) in &rows {
            assert!(o.energy_savings.is_finite(), "{name}");
            // Quick runs are transition-dominated; just sanity-bound them.
            assert!(
                o.perf_degradation > -0.5 && o.perf_degradation < 1.0,
                "{name}"
            );
        }
    }
}
