//! Table 3 (reconstructed): the PID scheme with different and shorter
//! interval lengths, versus the adaptive scheme (the paper's closing
//! Section 5 study).
//!
//! Shorter intervals make the fixed-interval scheme more responsive — but
//! also noisier and costlier — and even at its best interval it should not
//! overtake the adaptive scheme on the fast-varying group.

use mcd_workloads::{registry, VariabilityClass};

use crate::runner::{pct, run as run_sim, Outcome, RunConfig, Scheme};
use crate::table::Table;

/// The interval lengths swept (instructions).
pub const INTERVALS: [u64; 5] = [2_500, 5_000, 10_000, 25_000, 100_000];

/// Mean outcomes on the fast group for each PID interval, plus adaptive.
pub fn sweep(cfg: &RunConfig) -> (Vec<(u64, Outcome)>, Outcome) {
    let names: Vec<&'static str> = registry::by_variability(VariabilityClass::Fast)
        .iter()
        .map(|s| s.name)
        .collect();
    let baselines: Vec<_> = names
        .iter()
        .map(|&n| (n, run_sim(n, Scheme::Baseline, cfg)))
        .collect();

    let mean_for = |scheme: Scheme, cfg: &RunConfig| {
        let os: Vec<Outcome> = baselines
            .iter()
            .map(|(n, b)| Outcome::versus(&run_sim(n, scheme, cfg), b))
            .collect();
        Outcome::mean(&os)
    };

    let pid_rows = INTERVALS
        .iter()
        .map(|&interval| {
            let mut c = cfg.clone();
            c.pid_interval = interval;
            (interval, mean_for(Scheme::Pid, &c))
        })
        .collect();
    let adaptive = mean_for(Scheme::Adaptive, cfg);
    (pid_rows, adaptive)
}

/// Renders Table 3.
pub fn run(cfg: &RunConfig) -> String {
    let (pid_rows, adaptive) = sweep(cfg);
    let mut t = Table::new(["Scheme", "Energy savings", "Perf degradation", "EDP gain"]);
    for (interval, o) in &pid_rows {
        t.row([
            format!("PID, {:.1}k-inst interval", *interval as f64 / 1000.0),
            pct(o.energy_savings),
            pct(o.perf_degradation),
            pct(o.edp_improvement),
        ]);
    }
    t.row([
        "adaptive (no interval)".to_string(),
        pct(adaptive.energy_savings),
        pct(adaptive.perf_degradation),
        pct(adaptive.edp_improvement),
    ]);
    let best_pid = pid_rows
        .iter()
        .map(|(_, o)| o.edp_improvement)
        .fold(f64::MIN, f64::max);
    format!(
        "Table 3 (reconstructed): PID interval-length sweep on the fast-varying group\n\n{}\n\
         Best PID EDP gain {} vs adaptive {}\n",
        t.render(),
        pct(best_pid),
        pct(adaptive.edp_improvement)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_intervals() {
        let cfg = RunConfig::quick().with_ops(15_000);
        let (rows, adaptive) = sweep(&cfg);
        assert_eq!(rows.len(), INTERVALS.len());
        assert!(adaptive.energy_savings.is_finite());
    }
}
