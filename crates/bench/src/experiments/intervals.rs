//! Table 3 (reconstructed): the PID scheme with different and shorter
//! interval lengths, versus the adaptive scheme (the paper's closing
//! Section 5 study).
//!
//! Shorter intervals make the fixed-interval scheme more responsive — but
//! also noisier and costlier — and even at its best interval it should not
//! overtake the adaptive scheme on the fast-varying group.

use mcd_workloads::{registry, VariabilityClass};

use crate::error::RunError;
use crate::runner::{pct, Outcome, RunConfig, RunSet, Scheme};
use crate::table::Table;

/// The interval lengths swept (instructions).
pub const INTERVALS: [u64; 5] = [2_500, 5_000, 10_000, 25_000, 100_000];

/// Mean outcomes on the fast group for each PID interval, plus adaptive.
pub fn sweep(rs: &RunSet, cfg: &RunConfig) -> Result<(Vec<(u64, Outcome)>, Outcome), RunError> {
    let names: Vec<&'static str> = registry::by_variability(VariabilityClass::Fast)
        .iter()
        .map(|s| s.name)
        .collect();

    // One task per (interval, benchmark) pair, plus the adaptive row.
    // Every task normalizes against the shared memoized baseline, so the
    // whole sweep simulates each benchmark's baseline exactly once.
    let mut tasks: Vec<(Option<u64>, &'static str)> = Vec::new();
    for &interval in &INTERVALS {
        for &n in &names {
            tasks.push((Some(interval), n));
        }
    }
    for &n in &names {
        tasks.push((None, n));
    }
    let outcomes = rs
        .par(tasks, |(interval, n)| {
            let base = rs.baseline(n, cfg)?;
            Ok(match interval {
                Some(iv) => {
                    let mut c = cfg.clone();
                    c.pid_interval = iv;
                    Outcome::versus(&rs.run(n, Scheme::Pid, &c)?, &base)
                }
                None => Outcome::versus(&rs.run(n, Scheme::Adaptive, cfg)?, &base),
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;

    let per_interval = outcomes.chunks_exact(names.len());
    let pid_rows = INTERVALS
        .iter()
        .zip(per_interval.clone())
        .map(|(&interval, os)| (interval, Outcome::mean(os)))
        .collect();
    let adaptive = Outcome::mean(&outcomes[INTERVALS.len() * names.len()..]);
    Ok((pid_rows, adaptive))
}

/// Renders Table 3.
pub fn run(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let (pid_rows, adaptive) = sweep(rs, cfg)?;
    let mut t = Table::new(["Scheme", "Energy savings", "Perf degradation", "EDP gain"]);
    for (interval, o) in &pid_rows {
        t.row([
            format!("PID, {:.1}k-inst interval", *interval as f64 / 1000.0),
            pct(o.energy_savings),
            pct(o.perf_degradation),
            pct(o.edp_improvement),
        ]);
    }
    t.row([
        "adaptive (no interval)".to_string(),
        pct(adaptive.energy_savings),
        pct(adaptive.perf_degradation),
        pct(adaptive.edp_improvement),
    ]);
    let best_pid = pid_rows
        .iter()
        .map(|(_, o)| o.edp_improvement)
        .fold(f64::MIN, f64::max);
    Ok(format!(
        "Table 3 (reconstructed): PID interval-length sweep on the fast-varying group\n\n{}\n\
         Best PID EDP gain {} vs adaptive {}\n",
        t.render(),
        pct(best_pid),
        pct(adaptive.edp_improvement)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_intervals() {
        let cfg = RunConfig::quick().with_ops(15_000);
        let rs = RunSet::new(crate::parallel::default_jobs());
        let (rows, adaptive) = sweep(&rs, &cfg).expect("valid sweep");
        assert_eq!(rows.len(), INTERVALS.len());
        assert!(adaptive.energy_savings.is_finite());
    }
}
