//! Table 2: the benchmark suite with its workload-variability
//! classification (Section 5.2).
//!
//! Each benchmark's baseline run records per-sample queue occupancies; the
//! spectral classifier integrates each queue's variance spectrum over the
//! fast-wavelength band and flags benchmarks whose fastest queue carries
//! substantial short-wavelength variance. The "designed" column is the
//! phase-program intent from `mcd-workloads`; agreement between the two is
//! the cross-check.

use mcd_analysis::WorkloadClassifier;
use mcd_sim::DomainId;
use mcd_workloads::registry;

use crate::error::RunError;
use crate::runner::{RunConfig, RunSet};
use crate::table::Table;

/// One classified benchmark row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite label.
    pub suite: String,
    /// Largest fast-band variance over the three queues (entries²).
    pub fast_variance: f64,
    /// Classifier verdict.
    pub classified_fast: bool,
    /// Designed class from the workload model.
    pub designed_fast: bool,
}

/// Classifies every benchmark; returns the rows (used by Figure 11 too).
pub fn classify_all(rs: &RunSet, cfg: &RunConfig) -> Result<Vec<Row>, RunError> {
    let classifier = WorkloadClassifier::default();
    rs.par(registry::all(), |spec| {
        let mut run_cfg = cfg.clone();
        run_cfg.traces = true;
        let result = rs.baseline(spec.name, &run_cfg)?;
        let fast_variance = DomainId::BACKEND
            .iter()
            .map(|d| {
                let series = result.metrics.occupancy_series(d.backend_index());
                classifier.classify(&series).fast_variance
            })
            .fold(0.0f64, f64::max);
        Ok(Row {
            name: spec.name,
            suite: spec.suite.to_string(),
            fast_variance,
            classified_fast: fast_variance >= classifier.variance_threshold,
            designed_fast: spec.expected_variability == mcd_workloads::VariabilityClass::Fast,
        })
    })
    .into_iter()
    .collect()
}

/// Renders Table 2.
pub fn run(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let rows = classify_all(rs, cfg)?;
    let mut t = Table::new([
        "Benchmark",
        "Suite",
        "Fast-band var (entries^2)",
        "Classified",
        "Designed",
    ]);
    let mut agree = 0;
    for r in &rows {
        if r.classified_fast == r.designed_fast {
            agree += 1;
        }
        t.row([
            r.name.to_string(),
            r.suite.clone(),
            format!("{:.2}", r.fast_variance),
            if r.classified_fast { "fast" } else { "slow" }.to_string(),
            if r.designed_fast { "fast" } else { "slow" }.to_string(),
        ]);
    }
    Ok(format!(
        "Table 2: Benchmark suite and workload-variability classification\n\
         (fast band: wavelengths 500-20000 sampling periods; multitaper spectrum)\n\n{}\n\
         Classifier agrees with the designed class on {agree}/{} benchmarks.\n",
        t.render(),
        rows.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_all_benchmarks() {
        // Quick config: classification quality is checked in the
        // integration suite with longer runs; here we check plumbing.
        let rs = RunSet::new(crate::parallel::default_jobs());
        let rows = classify_all(&rs, &RunConfig::quick()).expect("valid sweep");
        assert_eq!(rows.len(), 17);
        assert!(rows.iter().all(|r| r.fast_variance.is_finite()));
    }
}
