//! Ablations beyond the paper's figures: the design knobs Section 3 calls
//! out (`q_ref` as the energy/performance trade-off; step size for
//! XScale- vs Transmeta-style DVFS).

use mcd_power::DvfsStyle;

use crate::runner::{pct, run as run_sim, Outcome, RunConfig, Scheme};
use crate::table::Table;

/// A small representative benchmark set (one per behaviour class).
pub const REPRESENTATIVES: [&str; 4] = ["gzip", "wupwise", "mpeg2_decode", "mcf"];

fn mean_outcome(cfg: &RunConfig, scheme: Scheme) -> Outcome {
    let os: Vec<Outcome> = REPRESENTATIVES
        .iter()
        .map(|&n| {
            let base = run_sim(n, Scheme::Baseline, cfg);
            Outcome::versus(&run_sim(n, scheme, cfg), &base)
        })
        .collect();
    Outcome::mean(&os)
}

/// The `q_ref` trade-off: raising the reference occupancy is more
/// aggressive about energy, at a performance cost (Section 3.1).
pub fn run_qref(cfg: &RunConfig) -> String {
    let mut t = Table::new([
        "q_ref scale",
        "Energy savings",
        "Perf degradation",
        "EDP gain",
    ]);
    for scale in [0.5, 0.75, 1.0, 1.5, 2.0] {
        let mut c = cfg.clone();
        c.q_ref_scale = scale;
        let o = mean_outcome(&c, Scheme::Adaptive);
        t.row([
            format!("{scale:.2}"),
            pct(o.energy_savings),
            pct(o.perf_degradation),
            pct(o.edp_improvement),
        ]);
    }
    format!(
        "Ablation: reference queue occupancy (energy/performance trade-off knob)\n\
         benchmarks: {REPRESENTATIVES:?}\n\n{}",
        t.render()
    )
}

/// Step-size ablation, including a Transmeta-style configuration
/// (large steps, stall-during-transition).
pub fn run_step(cfg: &RunConfig) -> String {
    let mut t = Table::new([
        "style",
        "step",
        "Energy savings",
        "Perf degradation",
        "EDP gain",
    ]);
    for (style, step) in [
        (DvfsStyle::XScale, 1),
        (DvfsStyle::XScale, 4),
        (DvfsStyle::XScale, 16),
        (DvfsStyle::Transmeta, 16),
        (DvfsStyle::Transmeta, 64),
    ] {
        let mut c = cfg.clone();
        c.sim.dvfs_style = style;
        // Larger steps need higher trigger thresholds (Section 3's
        // switching-cost argument): scale the delays with the step.
        let o = {
            use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
            use mcd_sim::{DomainId, Machine};
            use mcd_workloads::{registry, TraceGenerator};
            let os: Vec<Outcome> = REPRESENTATIVES
                .iter()
                .map(|&n| {
                    let base = run_sim(n, Scheme::Baseline, &c);
                    let spec = registry::by_name(n).expect("known benchmark");
                    let mut m =
                        Machine::new(c.sim.clone(), TraceGenerator::new(&spec, c.ops, c.seed));
                    for &d in &DomainId::BACKEND {
                        let acfg = AdaptiveConfig::for_domain(d)
                            .with_step(step)
                            .with_delays(50.0 * step as f64, 8.0 * step as f64);
                        m = m.with_controller(d, Box::new(AdaptiveDvfsController::new(acfg)));
                    }
                    Outcome::versus(&m.run(), &base)
                })
                .collect();
            Outcome::mean(&os)
        };
        t.row([
            format!("{style:?}"),
            step.to_string(),
            pct(o.energy_savings),
            pct(o.perf_degradation),
            pct(o.edp_improvement),
        ]);
    }
    format!(
        "Ablation: action step size and DVFS style (Section 3's switching-cost trade-off)\n\
         benchmarks: {REPRESENTATIVES:?}\n\n{}\n\
         Note: Transmeta-style DVFS stalls the domain for the whole (10x slower)\n\
         transition, so at sub-millisecond workload timescales *any* triggered\n\
         action is ruinous — exactly Section 3's warning that slow-switching\n\
         implementations need coarse steps and high trigger thresholds, and are\n\
         only viable when workload phases last tens of milliseconds.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qref_ablation_renders_all_scales() {
        let out = run_qref(&RunConfig::quick().with_ops(10_000));
        assert!(out.contains("0.50") && out.contains("2.00"));
    }

    #[test]
    fn step_ablation_includes_transmeta() {
        let out = run_step(&RunConfig::quick().with_ops(10_000));
        assert!(out.contains("Transmeta"));
    }
}
