//! Ablations beyond the paper's figures: the design knobs Section 3 calls
//! out (`q_ref` as the energy/performance trade-off; step size for
//! XScale- vs Transmeta-style DVFS).

use mcd_power::DvfsStyle;

use crate::error::RunError;
use crate::runner::{pct, Outcome, RunConfig, RunSet, Scheme};
use crate::table::Table;

/// A small representative benchmark set (one per behaviour class).
pub const REPRESENTATIVES: [&str; 4] = ["gzip", "wupwise", "mpeg2_decode", "mcf"];

/// The `q_ref` trade-off: raising the reference occupancy is more
/// aggressive about energy, at a performance cost (Section 3.1).
pub fn run_qref(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    const SCALES: [f64; 5] = [0.5, 0.75, 1.0, 1.5, 2.0];
    let mut tasks = Vec::with_capacity(SCALES.len() * REPRESENTATIVES.len());
    for &scale in &SCALES {
        for &n in &REPRESENTATIVES {
            tasks.push((scale, n));
        }
    }
    // q_ref only affects the adaptive controller, so every scale shares
    // the same four memoized baselines.
    let outcomes = rs
        .par(tasks, |(scale, n)| {
            let base = rs.baseline(n, cfg)?;
            let mut c = cfg.clone();
            c.q_ref_scale = scale;
            Ok(Outcome::versus(&rs.run(n, Scheme::Adaptive, &c)?, &base))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;

    let mut t = Table::new([
        "q_ref scale",
        "Energy savings",
        "Perf degradation",
        "EDP gain",
    ]);
    for (scale, os) in SCALES
        .iter()
        .zip(outcomes.chunks_exact(REPRESENTATIVES.len()))
    {
        let o = Outcome::mean(os);
        t.row([
            format!("{scale:.2}"),
            pct(o.energy_savings),
            pct(o.perf_degradation),
            pct(o.edp_improvement),
        ]);
    }
    Ok(format!(
        "Ablation: reference queue occupancy (energy/performance trade-off knob)\n\
         benchmarks: {REPRESENTATIVES:?}\n\n{}",
        t.render()
    ))
}

/// Step-size ablation, including a Transmeta-style configuration
/// (large steps, stall-during-transition).
pub fn run_step(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    const POINTS: [(DvfsStyle, i32); 5] = [
        (DvfsStyle::XScale, 1),
        (DvfsStyle::XScale, 4),
        (DvfsStyle::XScale, 16),
        (DvfsStyle::Transmeta, 16),
        (DvfsStyle::Transmeta, 64),
    ];
    let mut tasks = Vec::with_capacity(POINTS.len() * REPRESENTATIVES.len());
    for &point in &POINTS {
        for &n in &REPRESENTATIVES {
            tasks.push((point, n));
        }
    }
    // Larger steps need higher trigger thresholds (Section 3's
    // switching-cost argument): scale the delays with the step.
    let outcomes = rs
        .par(tasks, |((style, step), n)| {
            use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
            use mcd_sim::{DomainId, Machine};
            use mcd_workloads::{registry, TraceGenerator};
            let mut c = cfg.clone();
            c.sim.dvfs_style = style;
            let base = rs.baseline(n, &c)?;
            let spec = registry::by_name(n)
                .ok_or_else(|| RunError::Workload(format!("unknown benchmark {n}")))?;
            let trace =
                TraceGenerator::try_new(&spec, c.ops, c.seed).map_err(RunError::Workload)?;
            let mut m = Machine::try_new(c.sim.clone(), trace)?;
            for &d in &DomainId::BACKEND {
                let acfg = AdaptiveConfig::for_domain(d)
                    .with_step(step)
                    .with_delays(50.0 * step as f64, 8.0 * step as f64);
                m = m.with_controller(d, Box::new(AdaptiveDvfsController::new(acfg)));
            }
            let label = format!(
                "ablate-step|{n}|style={style:?}|step={step}|ops={}|seed={}",
                c.ops, c.seed
            );
            let run = rs.run_custom(&label, |sink| Ok(m.try_run_traced(sink)?))?;
            Ok(Outcome::versus(&run, &base))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;

    let mut t = Table::new([
        "style",
        "step",
        "Energy savings",
        "Perf degradation",
        "EDP gain",
    ]);
    for ((style, step), os) in POINTS
        .iter()
        .zip(outcomes.chunks_exact(REPRESENTATIVES.len()))
    {
        let o = Outcome::mean(os);
        t.row([
            format!("{style:?}"),
            step.to_string(),
            pct(o.energy_savings),
            pct(o.perf_degradation),
            pct(o.edp_improvement),
        ]);
    }
    Ok(format!(
        "Ablation: action step size and DVFS style (Section 3's switching-cost trade-off)\n\
         benchmarks: {REPRESENTATIVES:?}\n\n{}\n\
         Note: Transmeta-style DVFS stalls the domain for the whole (10x slower)\n\
         transition, so at sub-millisecond workload timescales *any* triggered\n\
         action is ruinous — exactly Section 3's warning that slow-switching\n\
         implementations need coarse steps and high trigger thresholds, and are\n\
         only viable when workload phases last tens of milliseconds.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qref_ablation_renders_all_scales() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let out = run_qref(&rs, &RunConfig::quick().with_ops(10_000)).expect("valid sweep");
        assert!(out.contains("0.50") && out.contains("2.00"));
    }

    #[test]
    fn step_ablation_includes_transmeta() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let out = run_step(&rs, &RunConfig::quick().with_ops(10_000)).expect("valid sweep");
        assert!(out.contains("Transmeta"));
    }
}
