//! The controller bake-off matrix and the μ–f resonance sweep.
//!
//! `repro bakeoff` runs every controlled scheme — the paper's three plus
//! the two wider-literature baselines ([`Scheme::BAKEOFF`]) — against a
//! workload set that includes the adversarial generators built to hurt
//! them: the phase-change storm straddling the relay's filtering delays,
//! the resonant-burst pattern locked to the 5:8 domain-frequency ratio,
//! and the multi-program interleave. Each cell is normalized against the
//! same workload's full-speed baseline; a ranked table aggregates the
//! schemes across workloads by mean EDP improvement and mean reaction
//! time.
//!
//! `repro resonance` is the companion micro-measurement: the flat
//! [`synthetic::resonance_probe`] workload pinned at a frequency grid,
//! with and without clock jitter, exposing the rational-ratio resonance
//! (625 MHz = 5:8 of the 1 GHz front end) that jitter normally breaks up.

use mcd_adaptive::AdaptiveConfig;
use mcd_baselines::FixedOperatingPoint;
use mcd_power::OpIndex;
use mcd_sim::{DomainId, Machine, SimResult};
use mcd_workloads::{adversarial, registry, synthetic, BenchmarkSpec, TraceGenerator};

use crate::error::RunError;
use crate::experiments::extensions::run_spec;
use crate::runner::{pct, Outcome, RunConfig, RunSet, Scheme};
use crate::table::Table;

/// The bake-off workload set: two representative registry benchmarks
/// (integer-bursty and FP-steady), the three adversarial generators, and
/// the mid-wavelength square wave. The storm is parameterized on the INT
/// domain's actual relay delays, so it tracks `AdaptiveConfig` tuning.
fn workloads() -> Vec<BenchmarkSpec> {
    let relay = AdaptiveConfig::for_domain(DomainId::Int);
    vec![
        registry::by_name("gzip").expect("registered"),
        registry::by_name("swim").expect("registered"),
        adversarial::phase_storm(relay.t_m0, relay.t_l0),
        adversarial::resonant_burst_default(),
        adversarial::interleaved_mix_default(),
        synthetic::square_wave(20_000, 0.4),
    ]
}

/// Mean deviation-onset→frequency-step reaction time of one run, over
/// all backend domains, in nanoseconds; `None` if nothing reacted.
fn reaction_ns(r: &SimResult) -> Option<f64> {
    let sum: u64 = r.metrics.reaction_sum_ps.iter().sum();
    let count: u64 = r.metrics.reaction_count.iter().sum();
    (count > 0).then(|| sum as f64 / count as f64 / 1000.0)
}

/// Workload class of a bake-off spec, for the class-weighted aggregate:
/// the adversarial generators, the reference registry programs, and the
/// synthetic patterns each count once in `wmean EDP`, whatever their
/// population in the set (three adversaries must not outvote gzip).
fn workload_class(name: &str) -> &'static str {
    if name.starts_with("adversarial_") {
        "adversarial"
    } else if registry::by_name(name).is_some() {
        "reference"
    } else {
        "synthetic"
    }
}

/// Equal-weight mean over the per-class mean EDP improvements.
fn class_weighted_edp(classes: &[&'static str], outcomes: &[Outcome]) -> f64 {
    let mut names: Vec<&'static str> = Vec::new();
    for &c in classes {
        if !names.contains(&c) {
            names.push(c);
        }
    }
    let mut sum = 0.0;
    for name in &names {
        let in_class: Vec<f64> = classes
            .iter()
            .zip(outcomes)
            .filter(|(c, _)| *c == name)
            .map(|(_, o)| o.edp_improvement)
            .collect();
        sum += in_class.iter().sum::<f64>() / in_class.len() as f64;
    }
    sum / names.len() as f64
}

/// The scheme × workload bake-off matrix, normalized per workload and
/// ranked by mean EDP improvement.
pub fn run(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let specs = workloads();
    // One flattened item per (workload, scheme) cell, workload-major with
    // the baseline first in each chunk — the same fan-out shape as the
    // wavelength sweep, so the long adversarial runs spread across
    // workers while results regroup in input order (byte-identical
    // reports whatever the worker count).
    let mut schemes = vec![Scheme::Baseline];
    schemes.extend(Scheme::BAKEOFF);
    let mut items = Vec::with_capacity(specs.len() * schemes.len());
    for spec in &specs {
        for &scheme in &schemes {
            items.push((spec.clone(), scheme));
        }
    }
    let runs = rs
        .par(items, |(spec, scheme)| {
            let label = format!(
                "bakeoff|{}|{}|ops={}|seed={}",
                spec.name,
                scheme.name(),
                cfg.ops,
                cfg.seed
            );
            rs.run_custom(&label, |sink| run_spec(&spec, scheme, cfg, sink))
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;

    // Per-workload matrix: one EDP column per controlled scheme.
    let mut headers = vec!["workload".to_string()];
    headers.extend(Scheme::BAKEOFF.iter().map(|s| format!("{} EDP", s.name())));
    let mut t = Table::new(headers);
    // Per-scheme accumulators for the ranked aggregate.
    let mut agg: Vec<(Scheme, Vec<Outcome>, Vec<f64>)> = Scheme::BAKEOFF
        .iter()
        .map(|&s| (s, Vec::new(), Vec::new()))
        .collect();
    for (wi, spec) in specs.iter().enumerate() {
        let chunk = &runs[wi * schemes.len()..(wi + 1) * schemes.len()];
        let baseline = &chunk[0];
        let mut row = vec![spec.name.to_string()];
        for (si, slot) in agg.iter_mut().enumerate() {
            let result = &chunk[si + 1];
            let outcome = Outcome::versus(result, baseline);
            row.push(pct(outcome.edp_improvement));
            slot.1.push(outcome);
            if let Some(ns) = reaction_ns(result) {
                slot.2.push(ns);
            }
        }
        t.row(row);
    }

    // Ranked aggregate: best mean EDP first. f64 ties are impossible to
    // break stably with partial_cmp alone; total_cmp keeps the ordering
    // deterministic bit-for-bit.
    let classes: Vec<&'static str> = specs.iter().map(|s| workload_class(s.name)).collect();
    let mut ranked: Vec<(Scheme, Outcome, f64, Option<f64>)> = agg
        .into_iter()
        .map(|(s, outcomes, reactions)| {
            let mean = Outcome::mean(&outcomes);
            let wmean = class_weighted_edp(&classes, &outcomes);
            let reaction = (!reactions.is_empty())
                .then(|| reactions.iter().sum::<f64>() / reactions.len() as f64);
            (s, mean, wmean, reaction)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.edp_improvement.total_cmp(&a.1.edp_improvement));
    // The energy/slowdown Pareto front: a scheme is marked unless some
    // other scheme saves at least as much energy AND slows down no more,
    // with one of the two strictly better.
    let pareto: Vec<bool> = ranked
        .iter()
        .map(|(_, mean, _, _)| {
            !ranked.iter().any(|(_, other, _, _)| {
                other.energy_savings >= mean.energy_savings
                    && other.perf_degradation <= mean.perf_degradation
                    && (other.energy_savings > mean.energy_savings
                        || other.perf_degradation < mean.perf_degradation)
            })
        })
        .collect();
    let mut r = Table::new([
        "rank",
        "scheme",
        "mean energy",
        "mean slowdown",
        "mean EDP",
        "wmean EDP",
        "mean reaction",
        "pareto",
    ]);
    for (i, (scheme, mean, wmean, reaction)) in ranked.iter().enumerate() {
        r.row([
            format!("{}", i + 1),
            scheme.name().to_string(),
            pct(mean.energy_savings),
            pct(mean.perf_degradation),
            pct(mean.edp_improvement),
            pct(*wmean),
            match reaction {
                Some(ns) => format!("{ns:.0}ns"),
                None => "n/a".to_string(),
            },
            if pareto[i] {
                "*".to_string()
            } else {
                String::new()
            },
        ]);
    }
    Ok(format!(
        "Bake-off: every controlled scheme x adversarial workload matrix\n\n{}\n\
         Ranked aggregate (mean over the workload set, best EDP first):\n\n{}\n\
         Reading guide: the storm phases straddle the adaptive relay's T_m0/T_l0\n\
         filtering delays, the resonant burst locks its duty pattern to the 5:8\n\
         ratio of 625 MHz to the 1 GHz front end, and the interleave context-\n\
         switches three programs at quantum granularity. Fixed-interval schemes\n\
         alias the storm into their interval averages; the adaptive scheme pays\n\
         for its relay delays only when deviations sit just past them.\n\
         wmean EDP weighs the reference, synthetic, and adversarial workload\n\
         classes equally (three adversaries must not outvote gzip); * marks the\n\
         energy-vs-slowdown Pareto front — no scheme above or below it saves\n\
         more energy while also slowing the machine down less.\n",
        t.render(),
        r.render()
    ))
}

/// The frequency grid of the resonance sweep: minimum, quartiles, and
/// the maximum of the default curve. Index 160 is 625 MHz — the 5:8
/// rational ratio under test.
const GRID: [u16; 5] = [0, 80, 160, 240, 320];

/// Throughput vs pinned INT frequency, with and without clock jitter:
/// the μ–f resonance measurement promoted from the model-validation
/// suite into a named experiment.
pub fn run_resonance(rs: &RunSet, cfg: &RunConfig) -> Result<String, RunError> {
    let spec = synthetic::resonance_probe();
    let mut items = Vec::with_capacity(GRID.len() * 2);
    for idx in GRID {
        for jitter in [true, false] {
            items.push((idx, jitter));
        }
    }
    let runs = rs
        .par(items, |(idx, jitter)| {
            let mut c = cfg.clone();
            if !jitter {
                c.sim.jitter_sigma_ps = 0.0;
            }
            let label = format!(
                "resonance|idx={idx}|jitter={jitter}|ops={}|seed={}",
                c.ops, c.seed
            );
            rs.run_custom(&label, |sink| {
                crate::runner::run_sharded(
                    c.shard_ops,
                    None,
                    || {
                        let trace = TraceGenerator::try_new(&spec, c.ops, c.seed)
                            .map_err(RunError::Workload)?;
                        // Pin the INT domain: start *at* the grid point
                        // (otherwise the regulator's ~55 us slew from max
                        // contaminates short runs) and hold it there.
                        Ok(Machine::try_new(c.sim.clone(), trace)?
                            .with_initial_operating_point(DomainId::Int, OpIndex(idx))
                            .with_controller(
                                DomainId::Int,
                                Box::new(FixedOperatingPoint(OpIndex(idx))),
                            ))
                    },
                    sink,
                )
            })
        })
        .into_iter()
        .collect::<Result<Vec<_>, RunError>>()?;

    let mips = |r: &SimResult| r.instructions as f64 / r.sim_time.as_secs() / 1e6;
    let mut t = Table::new([
        "INT idx",
        "f (MHz)",
        "MIPS (jitter on)",
        "MIPS (jitter off)",
        "resonance delta",
    ]);
    let curve = cfg.sim.vf_curve.clone();
    for (gi, &idx) in GRID.iter().enumerate() {
        let on = mips(&runs[gi * 2]);
        let off = mips(&runs[gi * 2 + 1]);
        t.row([
            idx.to_string(),
            format!("{:.0}", curve.point(OpIndex(idx)).frequency.as_mhz()),
            format!("{on:.1}"),
            format!("{off:.1}"),
            pct(off / on - 1.0),
        ]);
    }
    Ok(format!(
        "Resonance: throughput vs pinned INT frequency, jittered vs deterministic clocks\n\n{}\n\
         Reading guide: with deterministic clock edges, frequencies at small\n\
         rational ratios of the 1 GHz front end (index 160 = 625 MHz = 5:8) lock\n\
         into a fixed edge alignment with the synchronization window, so the\n\
         jitter-off column picks up throughput structure the smooth mu(f) model\n\
         cannot capture. The paper's +-10 ps seeded jitter (the on column)\n\
         breaks the lock, which is why the headline experiments keep it enabled.\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_set_is_well_formed() {
        let specs = workloads();
        assert_eq!(specs.len(), 6);
        let names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        for adversary in [
            "adversarial_phase_storm",
            "adversarial_resonant_burst",
            "adversarial_interleave",
        ] {
            assert!(names.contains(&adversary), "missing {adversary}");
        }
        for spec in &specs {
            assert!(!spec.phases.is_empty());
        }
    }

    #[test]
    fn bakeoff_ranks_every_scheme() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let out = run(&rs, &RunConfig::quick().with_ops(12_000)).expect("valid matrix");
        for scheme in Scheme::BAKEOFF {
            assert!(out.contains(scheme.name()), "missing {}", scheme.name());
        }
        for workload in ["adversarial_phase_storm", "adversarial_resonant_burst"] {
            assert!(out.contains(workload), "missing {workload}");
        }
        assert!(out.contains("Ranked aggregate"));
        assert!(out.contains("wmean EDP"), "class-weighted column missing");
        assert!(out.contains("pareto"), "Pareto marker column missing");
        // At least one scheme always sits on the Pareto front (the
        // energy-max point cannot be dominated).
        let ranked = &out[out.find("Ranked aggregate").expect("section")..];
        assert!(
            ranked.lines().any(|l| l.trim_end().ends_with('*')),
            "no scheme marked on the Pareto front:\n{ranked}"
        );
    }

    #[test]
    fn workload_classes_partition_the_set() {
        let specs = workloads();
        let classes: Vec<&str> = specs.iter().map(|s| workload_class(s.name)).collect();
        assert!(classes.contains(&"reference"));
        assert!(classes.contains(&"adversarial"));
        assert!(classes.contains(&"synthetic"));
        assert_eq!(workload_class("gzip"), "reference");
        assert_eq!(workload_class("adversarial_phase_storm"), "adversarial");
        assert_eq!(workload_class("square_wave"), "synthetic");
    }

    #[test]
    fn class_weighted_mean_weighs_classes_not_workloads() {
        let o = |edp: f64| Outcome {
            energy_savings: 0.0,
            perf_degradation: 0.0,
            edp_improvement: edp,
        };
        // Three adversarial outcomes at 0% vs one reference at 30%: the
        // plain mean is 7.5%, the class-weighted mean is 15%.
        let classes = ["adversarial", "adversarial", "adversarial", "reference"];
        let outcomes = [o(0.0), o(0.0), o(0.0), o(0.30)];
        let wmean = class_weighted_edp(&classes, &outcomes);
        assert!((wmean - 0.15).abs() < 1e-12, "got {wmean}");
    }

    #[test]
    fn bakeoff_report_is_identical_across_worker_counts() {
        let cfg = RunConfig::quick().with_ops(8_000);
        let serial = run(&RunSet::new(1), &cfg).expect("serial");
        let parallel = run(&RunSet::new(4), &cfg).expect("parallel");
        assert_eq!(serial, parallel, "worker count changed report bytes");
    }

    #[test]
    fn resonance_covers_the_grid() {
        let rs = RunSet::new(crate::parallel::default_jobs());
        let out = run_resonance(&rs, &RunConfig::quick().with_ops(10_000)).expect("valid sweep");
        assert!(out.contains("625"), "the 5:8 point must be on the grid");
        assert!(out.contains("jitter on"));
        for idx in GRID {
            assert!(out.contains(&idx.to_string()), "missing grid point {idx}");
        }
    }
}
