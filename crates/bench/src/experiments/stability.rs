//! Section 4 analyses as runnable experiments: the characteristic-root
//! stability sweep (Remark 1) and the overshoot-vs-delay-ratio study
//! (Remark 3).

use mcd_analysis::discrete::{euler_discretize, exact_discretize, max_stable_period};
use mcd_analysis::frequency_response::{min_trackable_wavelength, tracking_bandwidth};
use mcd_analysis::{step_response, SystemParams};

use crate::table::Table;

/// Remark 1: characteristic roots across a parameter sweep — every
/// positive setting stays in the left half-plane.
pub fn run_roots() -> String {
    let mut t = Table::new([
        "step", "T_m0", "T_l0", "root 1", "root 2", "xi", "t_s", "t_r", "stable",
    ]);
    let mut all_stable = true;
    for &step in &[0.25, 1.0, 4.0] {
        for &t_m0 in &[10.0, 50.0, 200.0] {
            for &t_l0 in &[2.0, 8.0, 32.0] {
                let sys = SystemParams {
                    step,
                    t_m0,
                    t_l0,
                    ..SystemParams::paper_default()
                };
                let (r1, r2) = sys.roots();
                all_stable &= sys.is_stable();
                t.row([
                    format!("{step}"),
                    format!("{t_m0}"),
                    format!("{t_l0}"),
                    format!("{r1}"),
                    format!("{r2}"),
                    format!("{:.3}", sys.damping_ratio()),
                    format!("{:.1}", sys.settling_time()),
                    format!("{:.1}", sys.rising_time()),
                    if sys.is_stable() { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }
    format!(
        "Remark 1: characteristic roots s = (-K_l +- sqrt(K_l^2 - 4K_m))/2 across the design space\n\n{}\n\
         All settings stable: {}\n",
        t.render(),
        if all_stable { "yes (Remark 1 confirmed)" } else { "NO — Remark 1 violated!" }
    )
}

/// Remark 3: percent overshoot (formula and simulated) versus the
/// `T_m0/T_l0` delay ratio; the 2–8 band keeps overshoot small.
pub fn run_overshoot() -> String {
    let mut t = Table::new([
        "T_m0/T_l0",
        "xi",
        "overshoot (formula)",
        "overshoot (simulated)",
        "rise time",
        "in 2-8 band",
    ]);
    for ratio in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 6.25, 8.0, 12.0, 16.0] {
        let sys = SystemParams {
            t_m0: 8.0 * ratio,
            t_l0: 8.0,
            ..SystemParams::paper_default()
        };
        let m = step_response(&sys);
        t.row([
            format!("{ratio:.2}"),
            format!("{:.3}", sys.damping_ratio()),
            format!("{:.1}%", sys.percent_overshoot() * 100.0),
            format!("{:.1}%", m.overshoot * 100.0),
            format!("{:.1}", m.rise_time),
            if (2.0..=8.0).contains(&ratio) {
                "yes"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    format!(
        "Remark 3: transient overshoot vs delay ratio (paper setting: 50/8 = 6.25)\n\n{}",
        t.render()
    )
}

/// The loop's tracking bandwidth versus the delay settings: the analytic
/// counterpart of the empirical wavelength sweep.
pub fn run_bandwidth() -> String {
    let mut t = Table::new([
        "T_m0",
        "T_l0",
        "K_m",
        "K_l",
        "bandwidth (rad/sample)",
        "min trackable wavelength (samples)",
    ]);
    for (t_m0, t_l0) in [
        (12.5, 2.0),
        (25.0, 4.0),
        (50.0, 8.0),
        (100.0, 16.0),
        (200.0, 32.0),
    ] {
        let sys = SystemParams {
            t_m0,
            t_l0,
            ..SystemParams::paper_default()
        };
        t.row([
            format!("{t_m0}"),
            format!("{t_l0}"),
            format!("{:.4}", sys.k_m()),
            format!("{:.4}", sys.k_l()),
            format!("{:.4}", tracking_bandwidth(&sys)),
            format!("{:.0}", min_trackable_wavelength(&sys)),
        ]);
    }
    format!(
        "Tracking bandwidth of the linearized loop |H(jw)| = |(K_l s + K_m)/(s^2 + K_l s + K_m)|\n\n{}\n\
         Variations shorter than the minimum trackable wavelength are averaged\n\
         over rather than followed — the analytic reason the wavelength-sweep\n\
         experiment (ablate-wavelength) flattens out at short wavelengths.\n",
        t.render()
    )
}

/// The discrete-time refinement (the paper's deferred future work):
/// spectral radius of the sampled loop versus sampling period.
pub fn run_sampling() -> String {
    let sys = SystemParams::paper_default();
    let h_max = max_stable_period(&sys);
    let mut t = Table::new([
        "sampling period h",
        "radius exp(hA)",
        "radius I+hA (Euler)",
        "Euler stable",
    ]);
    for h in [0.1, 0.5, 1.0, 2.0, 4.0, 6.0, 6.25, 7.0, 10.0] {
        let exact = exact_discretize(&sys, h).spectral_radius();
        let euler = euler_discretize(&sys, h).spectral_radius();
        t.row([
            format!("{h}"),
            format!("{exact:.4}"),
            format!("{euler:.4}"),
            if euler < 1.0 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "Discrete-time refinement (Section 4's future work): sampled-loop stability\n\n{}\n\
         Exact sampling of the stable continuous loop never destabilizes; the\n\
         step-per-period (Euler) controller loses stability past h_max = {h_max:.2}\n\
         controller time units — the paper's 250 MHz sampling (h = 1) sits well inside.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_report_shows_stability_boundary() {
        let out = run_sampling();
        assert!(out.contains("h_max = 6.25"));
        assert!(out.contains("NO"), "some Euler rows should be unstable");
    }

    #[test]
    fn roots_report_confirms_remark1() {
        let out = run_roots();
        assert!(out.contains("Remark 1 confirmed"), "{out}");
        assert!(!out.contains("NO — "));
    }

    #[test]
    fn overshoot_report_covers_the_band() {
        let out = run_overshoot();
        assert!(out.contains("6.25"));
        assert!(out.contains("in 2-8 band"));
    }
}
