//! Resumable sweep checkpoints (`repro --checkpoint DIR`, DESIGN.md §7).
//!
//! A checkpoint directory records each completed experiment as two files,
//! written the moment the experiment finishes so a killed sweep loses at
//! most the run in flight:
//!
//! * `<id>.report.txt` — the rendered report, byte-exact;
//! * `<id>.record.json` — the bench record (wall-clock, run and
//!   instruction counters) in the same shape as one `--bench-out` entry.
//!
//! `manifest.json` pins the configuration fingerprint (ops, seed, PID
//! interval, q_ref scale). Resuming against a directory recorded under a
//! different configuration is refused — mixing reports from two
//! configurations would silently corrupt the regenerated output.
//! Reports are deterministic for a fixed configuration, so an entry
//! replayed from the checkpoint is byte-identical to re-running it.

use std::path::{Path, PathBuf};

use crate::error::RunError;
use crate::runner::RunConfig;

/// Maps an `std::io::Error` at `path` onto the typed taxonomy.
fn io_err(path: &Path, e: std::io::Error) -> RunError {
    RunError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Writes `contents` to `path`, creating missing parent directories.
/// Every file the harness emits (`--out`, `--bench-out`, `--trace-out`,
/// checkpoints) goes through here so path handling and error reporting
/// are uniform.
pub fn write_file(path: &Path, contents: &[u8]) -> Result<(), RunError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| io_err(path, e))
}

/// One completed experiment as recorded in (or replayed from) a
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRun {
    /// The rendered report, byte-exact.
    pub report: String,
    /// Experiment kind label (`simulation` / `analysis`).
    pub kind: String,
    /// Wall-clock seconds the original run took.
    pub wall_s: f64,
    /// Simulations the run executed.
    pub runs: u64,
    /// Instructions simulated.
    pub instructions: u64,
    /// Baseline-cache hits.
    pub baseline_hits: u64,
}

impl CompletedRun {
    /// Renders the `--bench-out`-shaped record line.
    pub fn record_json(&self, id: &str) -> String {
        let mips = if self.wall_s > 0.0 {
            self.instructions as f64 / self.wall_s / 1e6
        } else {
            0.0
        };
        format!(
            "{{\"experiment\": \"{id}\", \"kind\": \"{}\", \"wall_s\": {:.3}, \"runs\": {}, \
             \"instructions\": {}, \"baseline_cache_hits\": {}, \"simulated_mips\": {mips:.2}}}",
            self.kind, self.wall_s, self.runs, self.instructions, self.baseline_hits,
        )
    }
}

/// Finds the raw text of `"key": <value>` in a flat JSON object. Values
/// here are numbers or simple quoted labels — never nested objects or
/// strings containing commas.
fn raw_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn str_field(json: &str, key: &str) -> Option<String> {
    let raw = raw_field(json, key)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

fn u64_field(json: &str, key: &str) -> Option<u64> {
    raw_field(json, key)?.parse().ok()
}

fn f64_field(json: &str, key: &str) -> Option<f64> {
    raw_field(json, key)?.parse().ok()
}

/// An open checkpoint directory with a verified configuration manifest.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    /// The configuration fingerprint recorded in the manifest: everything
    /// a `repro` sweep lets the user vary that changes report bytes.
    pub fn fingerprint(cfg: &RunConfig) -> String {
        format!(
            "ops={};seed={};pid_interval={};q_ref_scale={}",
            cfg.ops, cfg.seed, cfg.pid_interval, cfg.q_ref_scale
        )
    }

    /// Opens (creating if needed) `dir` for the configuration described
    /// by `fingerprint`. Refuses a directory recorded under a different
    /// fingerprint.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: &str) -> Result<Self, RunError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let manifest = dir.join("manifest.json");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let recorded = str_field(&text, "fingerprint").ok_or_else(|| RunError::Io {
                    path: manifest.display().to_string(),
                    message: "manifest has no fingerprint field".into(),
                })?;
                if recorded != fingerprint {
                    return Err(RunError::Config(format!(
                        "checkpoint {} was recorded under a different configuration \
                         ({recorded}) than the one requested ({fingerprint}); \
                         use a fresh directory",
                        dir.display()
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                write_file(
                    &manifest,
                    format!("{{\"version\": 1, \"fingerprint\": \"{fingerprint}\"}}\n").as_bytes(),
                )?;
            }
            Err(e) => return Err(io_err(&manifest, e)),
        }
        Ok(CheckpointDir { dir })
    }

    fn report_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.report.txt"))
    }

    fn record_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.record.json"))
    }

    /// Records a completed experiment. The report is written before the
    /// record, so a crash between the two leaves an entry [`Self::load`]
    /// treats as incomplete.
    pub fn store(&self, id: &str, run: &CompletedRun) -> Result<(), RunError> {
        write_file(&self.report_path(id), run.report.as_bytes())?;
        let mut record = run.record_json(id);
        record.push('\n');
        write_file(&self.record_path(id), record.as_bytes())
    }

    /// Replays a completed experiment, or `None` if the entry is absent,
    /// partial, or unreadable (those simply re-run).
    pub fn load(&self, id: &str) -> Option<CompletedRun> {
        let report = std::fs::read_to_string(self.report_path(id)).ok()?;
        let record = std::fs::read_to_string(self.record_path(id)).ok()?;
        Some(CompletedRun {
            report,
            kind: str_field(&record, "kind")?,
            wall_s: f64_field(&record, "wall_s")?,
            runs: u64_field(&record, "runs")?,
            instructions: u64_field(&record, "instructions")?,
            baseline_hits: u64_field(&record, "baseline_cache_hits")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_dir() -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "mcd-checkpoint-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample() -> CompletedRun {
        CompletedRun {
            report: "Figure N\n\nline one\nline two\n".into(),
            kind: "simulation".into(),
            wall_s: 1.25,
            runs: 7,
            instructions: 123_456,
            baseline_hits: 3,
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "ops=1;seed=1").expect("open");
        assert_eq!(ck.load("fig9"), None, "empty checkpoint has no entries");
        ck.store("fig9", &sample()).expect("store");
        let back = ck.load("fig9").expect("entry present");
        assert_eq!(back, sample());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_fingerprint_is_refused() {
        let dir = scratch_dir();
        CheckpointDir::open(&dir, "ops=600000;seed=1").expect("create");
        let err = CheckpointDir::open(&dir, "ops=40000;seed=1").unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
        assert!(err.to_string().contains("different configuration"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_entries_do_not_resume() {
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "fp").expect("open");
        // Report written but no record (simulated crash between the two).
        write_file(&dir.join("fig7.report.txt"), b"partial").expect("write");
        assert_eq!(ck.load("fig7"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_file_creates_parents() {
        let dir = scratch_dir();
        let deep = dir.join("a/b/c.txt");
        write_file(&deep, b"x").expect("nested write");
        assert_eq!(std::fs::read(&deep).expect("read back"), b"x");
        let err = write_file(&dir.join("a/b"), b"clobber a directory").unwrap_err();
        assert_eq!(err.kind(), "io");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_report_shaping_knobs() {
        let full = RunConfig::full();
        let mut other = RunConfig::full();
        other.q_ref_scale = 1.5;
        assert_ne!(
            CheckpointDir::fingerprint(&full),
            CheckpointDir::fingerprint(&other)
        );
        assert_ne!(
            CheckpointDir::fingerprint(&full),
            CheckpointDir::fingerprint(&RunConfig::quick())
        );
    }
}
