//! Resumable sweep checkpoints (`repro --checkpoint DIR`, DESIGN.md §7).
//!
//! A checkpoint directory records each completed experiment as two files,
//! written the moment the experiment finishes so a killed sweep loses at
//! most the run in flight:
//!
//! * `<id>.report.txt` — the rendered report, byte-exact;
//! * `<id>.record.json` — the bench record (wall-clock, run and
//!   instruction counters) in the same shape as one `--bench-out` entry.
//!
//! `manifest.json` pins the configuration fingerprint (ops, seed, PID
//! interval, q_ref scale) *and* a fingerprint of the code that rendered
//! the reports (crate version plus a hash of the experiment registry —
//! see [`code_fingerprint`]). Resuming against a directory recorded
//! under a different configuration — or by a different binary version —
//! is refused: mixing reports from two configurations would silently
//! corrupt the regenerated output, and a stale directory left by an
//! older binary would silently serve reports the current code no longer
//! produces. Reports are deterministic for a fixed configuration and
//! code version, so an entry replayed from the checkpoint is
//! byte-identical to re-running it.
//!
//! The same format backs the `mcd-serve` result cache: the service
//! flushes its content-addressed cache as checkpoint entries on graceful
//! shutdown and warm-loads them on restart, with the code fingerprint
//! rejecting caches flushed by an older binary.

use std::path::{Path, PathBuf};

use crate::error::RunError;
use crate::runner::RunConfig;

/// Maps an `std::io::Error` at `path` onto the typed taxonomy.
fn io_err(path: &Path, e: std::io::Error) -> RunError {
    RunError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Writes `contents` to `path` atomically, creating missing parent
/// directories. Every file the harness emits (`--out`, `--bench-out`,
/// `--trace-out`, checkpoints, warm snapshots) goes through here so path
/// handling and error reporting are uniform.
///
/// The write lands in a temporary sibling first and is renamed into
/// place, so a reader — including `--resume` after the writer was killed
/// mid-write — sees the old contents or the new contents, never a
/// truncated mix. (The rename is atomic on the POSIX filesystems the
/// harness targets because the temporary lives in the same directory.)
pub fn write_file(path: &Path, contents: &[u8]) -> Result<(), RunError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, contents).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        // Leave no stray temporary behind a failed rename (e.g. the
        // destination is a directory).
        std::fs::remove_file(&tmp).ok();
        io_err(path, e)
    })
}

/// One completed experiment as recorded in (or replayed from) a
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRun {
    /// The rendered report, byte-exact.
    pub report: String,
    /// Experiment kind label (`simulation` / `analysis`).
    pub kind: String,
    /// Wall-clock seconds the original run took.
    pub wall_s: f64,
    /// Simulations the run executed.
    pub runs: u64,
    /// Instructions simulated.
    pub instructions: u64,
    /// Baseline lookups the experiment issued (hits and computes alike —
    /// see `RunStats::baseline_requests` for why requests, not hits, are
    /// the deterministic quantity).
    pub baseline_requests: u64,
    /// Scheduler events the experiment's simulations dispatched.
    pub events_processed: u64,
    /// Clock edges and sampling periods the event-driven core absorbed
    /// through steady-state replay or sample batching instead of
    /// dispatching them individually.
    pub cycles_skipped: u64,
    /// Median per-simulation wall time within this experiment, seconds
    /// (0 when the experiment ran no simulations).
    pub run_wall_p50_s: f64,
    /// 99th-percentile per-simulation wall time, seconds.
    pub run_wall_p99_s: f64,
}

impl CompletedRun {
    /// Renders the `--bench-out`-shaped record line.
    ///
    /// `wall_s` is quantized to the printed millisecond resolution
    /// *before* the derived MIPS figure is computed, so rendering is
    /// idempotent across a store/load round-trip: a record re-rendered
    /// from its parsed fields is byte-identical to the file it came
    /// from. `mcd-serve` relies on this for byte-identical warm-cache
    /// responses across restarts.
    pub fn record_json(&self, id: &str) -> String {
        let wall_s = (self.wall_s * 1000.0).round() / 1000.0;
        let mips = if wall_s > 0.0 {
            self.instructions as f64 / wall_s / 1e6
        } else {
            0.0
        };
        // Same quantize-before-render rule as wall_s, for the same
        // idempotency reason.
        let p50 = (self.run_wall_p50_s * 1000.0).round() / 1000.0;
        let p99 = (self.run_wall_p99_s * 1000.0).round() / 1000.0;
        // Skipped-per-event is derived from the two integer counters, so
        // it re-renders identically from a parsed record.
        let skipped_per_event = if self.events_processed > 0 {
            self.cycles_skipped as f64 / self.events_processed as f64
        } else {
            0.0
        };
        format!(
            "{{\"experiment\": \"{id}\", \"kind\": \"{}\", \"wall_s\": {wall_s:.3}, \"runs\": {}, \
             \"instructions\": {}, \"baseline_requests\": {}, \"simulated_mips\": {mips:.2}, \
             \"events_processed\": {}, \"cycles_skipped\": {}, \
             \"cycles_skipped_per_event\": {skipped_per_event:.2}, \
             \"run_wall_p50_s\": {p50:.3}, \"run_wall_p99_s\": {p99:.3}}}",
            self.kind,
            self.runs,
            self.instructions,
            self.baseline_requests,
            self.events_processed,
            self.cycles_skipped,
        )
    }
}

/// Finds the raw text of `"key": <value>` in a flat JSON object. Values
/// here are numbers or simple quoted labels — never nested objects or
/// strings containing commas.
fn raw_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

/// Extracts a quoted string field from a flat JSON object (no escape
/// handling — values here are simple labels). `None` if absent or not a
/// string. Shared with `mcd-serve`, whose request bodies are the same
/// flat shape as the records written here.
pub fn str_field(json: &str, key: &str) -> Option<String> {
    let raw = raw_field(json, key)?;
    Some(raw.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

/// Extracts an unsigned integer field from a flat JSON object.
pub fn u64_field(json: &str, key: &str) -> Option<u64> {
    raw_field(json, key)?.parse().ok()
}

/// Extracts a float field from a flat JSON object.
pub fn f64_field(json: &str, key: &str) -> Option<f64> {
    raw_field(json, key)?.parse().ok()
}

/// 64-bit FNV-1a, folded over `bytes` starting from `h` (chain calls
/// with the previous result; seed with [`FNV_OFFSET`]).
pub(crate) fn fnv1a64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fingerprint of the *code* that renders reports: the crate version
/// plus a hash of the experiment registry (every id and its kind). Two
/// binaries that disagree on either produce incomparable reports, so a
/// checkpoint or warm-cache directory recorded by one is rejected by the
/// other instead of being replayed stale.
pub fn code_fingerprint() -> String {
    code_fingerprint_for(env!("CARGO_PKG_VERSION"))
}

/// [`code_fingerprint`] with an explicit version label — the test
/// surface for proving that flipping the version invalidates a stale
/// cache instead of serving it.
pub fn code_fingerprint_for(version: &str) -> String {
    let mut h = FNV_OFFSET;
    for id in crate::experiments::ALL {
        h = fnv1a64(h, id.as_bytes());
        let kind = crate::experiments::kind(id)
            .expect("every registry id classifies")
            .label();
        h = fnv1a64(h, kind.as_bytes());
    }
    format!("v{version}+x{h:016x}")
}

/// An open checkpoint directory with a verified configuration manifest.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    /// The fingerprint recorded in the manifest: everything a `repro`
    /// sweep lets the user vary that changes report bytes, prefixed by
    /// the [`code_fingerprint`] of the binary that wrote it — so a
    /// checkpoint recorded by an older binary is refused, not replayed.
    pub fn fingerprint(cfg: &RunConfig) -> String {
        Self::fingerprint_for(cfg, &code_fingerprint())
    }

    /// [`Self::fingerprint`] under an explicit code fingerprint (see
    /// [`code_fingerprint_for`]); tests use this to simulate a version
    /// flip.
    pub fn fingerprint_for(cfg: &RunConfig, code: &str) -> String {
        format!(
            "{code};ops={};seed={};pid_interval={};q_ref_scale={}",
            cfg.ops, cfg.seed, cfg.pid_interval, cfg.q_ref_scale
        )
    }

    /// Opens (creating if needed) `dir` for the configuration described
    /// by `fingerprint`. Refuses a directory recorded under a different
    /// fingerprint.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: &str) -> Result<Self, RunError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let manifest = dir.join("manifest.json");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let recorded = str_field(&text, "fingerprint").ok_or_else(|| RunError::Io {
                    path: manifest.display().to_string(),
                    message: "manifest has no fingerprint field".into(),
                })?;
                if recorded != fingerprint {
                    return Err(RunError::Config(format!(
                        "checkpoint {} was recorded under a different configuration \
                         ({recorded}) than the one requested ({fingerprint}); \
                         use a fresh directory",
                        dir.display()
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                write_file(
                    &manifest,
                    format!("{{\"version\": 1, \"fingerprint\": \"{fingerprint}\"}}\n").as_bytes(),
                )?;
            }
            Err(e) => return Err(io_err(&manifest, e)),
        }
        Ok(CheckpointDir { dir })
    }

    fn report_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.report.txt"))
    }

    fn record_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.record.json"))
    }

    /// Records a completed experiment. The report is written before the
    /// record, so a crash between the two leaves an entry [`Self::load`]
    /// treats as incomplete.
    pub fn store(&self, id: &str, run: &CompletedRun) -> Result<(), RunError> {
        write_file(&self.report_path(id), run.report.as_bytes())?;
        let mut record = run.record_json(id);
        record.push('\n');
        write_file(&self.record_path(id), record.as_bytes())
    }

    /// The directory this checkpoint lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Ids of every *complete* entry (report and record both present),
    /// sorted. Partial entries — a crash between the two writes — are
    /// skipped, exactly as [`Self::load`] would skip them.
    pub fn ids(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let id = name.strip_suffix(".record.json")?;
                self.report_path(id).exists().then(|| id.to_string())
            })
            .collect();
        ids.sort();
        ids
    }

    /// Replays a completed experiment, or `None` if the entry is absent,
    /// partial, or unreadable (those simply re-run).
    pub fn load(&self, id: &str) -> Option<CompletedRun> {
        let report = std::fs::read_to_string(self.report_path(id)).ok()?;
        let record = std::fs::read_to_string(self.record_path(id)).ok()?;
        Some(CompletedRun {
            report,
            kind: str_field(&record, "kind")?,
            wall_s: f64_field(&record, "wall_s")?,
            runs: u64_field(&record, "runs")?,
            instructions: u64_field(&record, "instructions")?,
            // Renamed from "baseline_cache_hits" when the counter became
            // request-granular: records written under the old name (or
            // before a field existed) fail to load and simply re-run —
            // the standard incomplete-entry path, which also covers any
            // truncated file an unclean kill might have left before
            // writes became atomic.
            baseline_requests: u64_field(&record, "baseline_requests")?,
            events_processed: u64_field(&record, "events_processed")?,
            cycles_skipped: u64_field(&record, "cycles_skipped")?,
            run_wall_p50_s: f64_field(&record, "run_wall_p50_s")?,
            run_wall_p99_s: f64_field(&record, "run_wall_p99_s")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_dir() -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "mcd-checkpoint-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample() -> CompletedRun {
        CompletedRun {
            report: "Figure N\n\nline one\nline two\n".into(),
            kind: "simulation".into(),
            wall_s: 1.25,
            runs: 7,
            instructions: 123_456,
            baseline_requests: 3,
            events_processed: 9_876,
            cycles_skipped: 54_321,
            run_wall_p50_s: 0.125,
            run_wall_p99_s: 0.5,
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "ops=1;seed=1").expect("open");
        assert_eq!(ck.load("fig9"), None, "empty checkpoint has no entries");
        ck.store("fig9", &sample()).expect("store");
        let back = ck.load("fig9").expect("entry present");
        assert_eq!(back, sample());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_fingerprint_is_refused() {
        let dir = scratch_dir();
        CheckpointDir::open(&dir, "ops=600000;seed=1").expect("create");
        let err = CheckpointDir::open(&dir, "ops=40000;seed=1").unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
        assert!(err.to_string().contains("different configuration"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_entries_do_not_resume() {
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "fp").expect("open");
        // Report written but no record (simulated crash between the two).
        write_file(&dir.join("fig7.report.txt"), b"partial").expect("write");
        assert_eq!(ck.load("fig7"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_file_creates_parents() {
        let dir = scratch_dir();
        let deep = dir.join("a/b/c.txt");
        write_file(&deep, b"x").expect("nested write");
        assert_eq!(std::fs::read(&deep).expect("read back"), b"x");
        let err = write_file(&dir.join("a/b"), b"clobber a directory").unwrap_err();
        assert_eq!(err.kind(), "io");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_file_leaves_no_temporaries_behind() {
        let dir = scratch_dir();
        write_file(&dir.join("out.txt"), b"payload").expect("write");
        // Failed rename (destination is a directory) cleans up too.
        std::fs::create_dir_all(dir.join("taken")).expect("mkdir");
        write_file(&dir.join("taken"), b"clobber").unwrap_err();
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temporaries: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The kill-mid-write regression: a record truncated at any byte —
    /// what a non-atomic writer could leave when killed — must read as
    /// "incomplete, re-run", never as a resumable entry. With atomic
    /// writes the file can no longer *be* truncated, but `--resume` must
    /// also survive directories written by older binaries or mangled by
    /// the filesystem.
    #[test]
    fn truncated_record_is_rerun_not_trusted() {
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "fp").expect("open");
        ck.store("fig9", &sample()).expect("store");
        let record_path = dir.join("fig9.record.json");
        let full = std::fs::read(&record_path).expect("read record");
        for cut in [1, full.len() / 2, full.len() - 10] {
            std::fs::write(&record_path, &full[..cut]).expect("truncate");
            assert_eq!(
                ck.load("fig9"),
                None,
                "a record cut at byte {cut} must not resume"
            );
        }
        // Restoring the full bytes resumes again — load keys off content,
        // not some side channel.
        std::fs::write(&record_path, &full).expect("restore");
        assert_eq!(ck.load("fig9"), Some(sample()));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Records written under the pre-rename schema (`baseline_cache_hits`)
    /// re-run instead of resuming with a garbage counter.
    #[test]
    fn old_schema_records_rerun() {
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "fp").expect("open");
        ck.store("fig9", &sample()).expect("store");
        let record_path = dir.join("fig9.record.json");
        let new_schema = std::fs::read_to_string(&record_path).expect("read");
        let old_schema = new_schema.replace("baseline_requests", "baseline_cache_hits");
        assert_ne!(new_schema, old_schema);
        std::fs::write(&record_path, old_schema).expect("rewrite");
        assert_eq!(ck.load("fig9"), None, "old-schema records must re-run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_report_shaping_knobs() {
        let full = RunConfig::full();
        let mut other = RunConfig::full();
        other.q_ref_scale = 1.5;
        assert_ne!(
            CheckpointDir::fingerprint(&full),
            CheckpointDir::fingerprint(&other)
        );
        assert_ne!(
            CheckpointDir::fingerprint(&full),
            CheckpointDir::fingerprint(&RunConfig::quick())
        );
    }

    #[test]
    fn fingerprint_tracks_code_version() {
        let cfg = RunConfig::quick();
        let current = CheckpointDir::fingerprint(&cfg);
        let old = CheckpointDir::fingerprint_for(&cfg, &code_fingerprint_for("0.0.0-old"));
        assert_ne!(current, old, "a version flip must change the fingerprint");
        assert!(
            current.starts_with(&format!("v{}+x", env!("CARGO_PKG_VERSION"))),
            "fingerprint names the recording version: {current}"
        );
    }

    /// The regression the service depends on: a checkpoint (or warm
    /// cache) recorded by an older binary must be refused on open — a
    /// stale entry is a miss, never a hit.
    #[test]
    fn stale_code_version_is_refused_not_served() {
        let dir = scratch_dir();
        let cfg = RunConfig::quick();
        let old = CheckpointDir::fingerprint_for(&cfg, &code_fingerprint_for("0.0.0-old"));
        let ck = CheckpointDir::open(&dir, &old).expect("record under the old version");
        ck.store("fig9", &sample()).expect("store");
        let err = CheckpointDir::open(&dir, &CheckpointDir::fingerprint(&cfg)).unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
        assert!(err.to_string().contains("different configuration"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ids_lists_complete_entries_only() {
        let dir = scratch_dir();
        let ck = CheckpointDir::open(&dir, "fp").expect("open");
        assert!(ck.ids().is_empty());
        ck.store("fig9", &sample()).expect("store");
        ck.store("table2", &sample()).expect("store");
        // A partial entry (record without report) is not listed.
        write_file(&dir.join("fig7.record.json"), b"{}").expect("write");
        assert_eq!(ck.ids(), vec!["fig9".to_string(), "table2".to_string()]);
        assert_eq!(ck.dir(), dir.as_path());
        std::fs::remove_dir_all(&dir).ok();
    }
}
