//! Deterministic fan-out of independent work across OS threads.
//!
//! Every simulation *run* is single-threaded and deterministic (a core
//! invariant of this reproduction — see DESIGN.md §5); what the
//! experiment harness parallelizes is the *set* of independent runs a
//! figure or table needs. [`par_map`] is the fast-path primitive: it
//! applies a function to every item using scoped threads from `std` (no
//! external runtime), with results returned **in input order** regardless
//! of which worker finished first or when. A parallel experiment
//! therefore renders byte-identical reports to a serial one.
//!
//! [`par_try_map`] is its hardened sibling for sweeps that must survive
//! individual failures: each item runs under panic isolation and an
//! optional wall-clock budget, transient failures are retried once, and
//! the caller always gets one ordered slot per item — `Ok` results for
//! everything that completed plus a typed [`RunError`] for everything
//! that did not (DESIGN.md §7).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use crate::error::{panic_message, RunError};

/// The worker count used when the caller does not specify one.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `jobs` threads; results come back
/// in input order.
///
/// Work is claimed dynamically (an atomic cursor), so uneven item costs —
/// a 600 k-instruction `mcf` next to a 40 k `gzip` — still balance. With
/// `jobs <= 1` or a single item this degenerates to a plain serial map
/// with no thread or lock traffic.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after all workers stop).
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = inputs.get(i) else { break };
                let item = slot
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = f(item);
                *outputs[i].lock().expect("output slot poisoned") = Some(result);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot poisoned")
                .expect("every claimed item produces a result")
        })
        .collect()
}

/// One isolated attempt at `f(item)`: panics become
/// [`RunError::Panicked`]; with a budget, the attempt runs on its own
/// thread and [`RunError::Timeout`] is returned if it does not answer in
/// time (the stuck thread is deliberately left behind — there is no safe
/// way to cancel it, and the process exits after the sweep anyway).
fn attempt<T, R, F>(f: &Arc<F>, item: T, timeout: Option<Duration>) -> Result<R, RunError>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> Result<R, RunError> + Send + Sync + 'static,
{
    match timeout {
        None => catch_unwind(AssertUnwindSafe(|| f(item)))
            .unwrap_or_else(|p| Err(RunError::Panicked(panic_message(&*p)))),
        Some(budget) => {
            let (tx, rx) = mpsc::channel();
            let f = Arc::clone(f);
            let handle = std::thread::Builder::new()
                .name("mcd-bench-run".into())
                .spawn(move || {
                    let r = catch_unwind(AssertUnwindSafe(|| f(item)))
                        .unwrap_or_else(|p| Err(RunError::Panicked(panic_message(&*p))));
                    let _ = tx.send(r);
                })
                .expect("spawn run worker");
            match rx.recv_timeout(budget) {
                Ok(r) => {
                    let _ = handle.join();
                    r
                }
                Err(_) => Err(RunError::Timeout {
                    limit_ms: budget.as_millis() as u64,
                }),
            }
        }
    }
}

/// Fault-isolated sibling of [`par_map`]: applies `f` to every item on up
/// to `jobs` threads, returning one ordered `Result` slot per item.
///
/// Guarantees, in order of importance:
///
/// * **Isolation** — a panic in `f` is caught and becomes
///   [`RunError::Panicked`] for that slot only; every other item still
///   runs to completion.
/// * **Budget** — with `timeout = Some(d)`, each *attempt* gets `d` of
///   wall-clock; overruns become [`RunError::Timeout`] (the wedged thread
///   is detached, not joined).
/// * **Retry** — a transient first failure ([`RunError::is_transient`]:
///   panics and timeouts) is retried exactly once; typed errors are
///   deterministic and fail immediately. The item must be `Clone` so the
///   retry can re-present it.
///
/// The happy path returns exactly what [`par_map`] would, in the same
/// order — callers pay nothing in output stability for the isolation.
pub fn par_try_map<T, R, F>(
    jobs: usize,
    items: Vec<T>,
    timeout: Option<Duration>,
    f: F,
) -> Vec<Result<R, RunError>>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> Result<R, RunError> + Send + Sync + 'static,
{
    let f = Arc::new(f);
    par_map(jobs, items, move |item| {
        match attempt(&f, item.clone(), timeout) {
            Ok(r) => Ok(r),
            Err(e) if e.is_transient() => attempt(&f, item, timeout),
            Err(e) => Err(e),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_input_order() {
        // Make early items the slowest so out-of-order completion is
        // guaranteed, then check order anyway.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(8, items, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: u64| -> u64 {
            // A little arithmetic with a data-dependent trip count.
            (0..i % 97).fold(i, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let serial = par_map(1, (0..200).collect(), work);
        let parallel = par_map(7, (0..200).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicU32::new(0);
        let out = par_map(4, (0..100).collect::<Vec<u32>>(), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = par_map(8, Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(8, vec![5u8], |x| x + 1), vec![6]);
    }

    #[test]
    fn try_map_happy_path_matches_par_map() {
        let out = par_try_map(4, (0u64..20).collect(), None, |i| Ok(i * 3));
        assert_eq!(
            out,
            (0u64..20)
                .map(|i| Ok(i * 3))
                .collect::<Vec<Result<u64, RunError>>>()
        );
    }

    #[test]
    fn a_panicking_item_fails_alone() {
        let out = par_try_map(4, (0u32..8).collect(), None, |i| {
            if i == 3 {
                panic!("item three exploded");
            }
            Ok(i)
        });
        for (i, slot) in out.iter().enumerate() {
            if i == 3 {
                assert_eq!(slot, &Err(RunError::Panicked("item three exploded".into())));
            } else {
                assert_eq!(slot, &Ok(i as u32));
            }
        }
    }

    #[test]
    fn transient_failures_are_retried_once() {
        // Panics on every first sighting of an item, succeeds on retry.
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let s = Arc::clone(&seen);
        let out = par_try_map(2, vec![10u32, 20, 30], None, move |i| {
            if s.lock().unwrap().insert(i) {
                panic!("first attempt of {i}");
            }
            Ok(i)
        });
        assert_eq!(out, vec![Ok(10), Ok(20), Ok(30)]);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let out = par_try_map(1, vec![()], None, move |()| -> Result<(), RunError> {
            a.fetch_add(1, Ordering::Relaxed);
            Err(RunError::Config("structurally broken".into()))
        });
        assert_eq!(
            out,
            vec![Err(RunError::Config("structurally broken".into()))]
        );
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn overrunning_items_time_out_while_others_finish() {
        let out = par_try_map(4, vec![1u32, 2, 3], Some(Duration::from_millis(100)), |i| {
            if i == 2 {
                std::thread::sleep(Duration::from_secs(5));
            }
            Ok(i)
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Err(RunError::Timeout { limit_ms: 100 }));
        assert_eq!(out[2], Ok(3));
    }
}
