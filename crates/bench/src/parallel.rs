//! Deterministic fan-out of independent work across OS threads.
//!
//! Every simulation *run* is single-threaded and deterministic (a core
//! invariant of this reproduction — see DESIGN.md §5); what the
//! experiment harness parallelizes is the *set* of independent runs a
//! figure or table needs. [`par_map`] is the only primitive: it applies a
//! function to every item using scoped threads from `std` (no external
//! runtime), with results returned **in input order** regardless of which
//! worker finished first or when. A parallel experiment therefore renders
//! byte-identical reports to a serial one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count used when the caller does not specify one.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on up to `jobs` threads; results come back
/// in input order.
///
/// Work is claimed dynamically (an atomic cursor), so uneven item costs —
/// a 600 k-instruction `mcf` next to a 40 k `gzip` — still balance. With
/// `jobs <= 1` or a single item this degenerates to a plain serial map
/// with no thread or lock traffic.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after all workers stop).
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = inputs.get(i) else { break };
                let item = slot
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = f(item);
                *outputs[i].lock().expect("output slot poisoned") = Some(result);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot poisoned")
                .expect("every claimed item produces a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_input_order() {
        // Make early items the slowest so out-of-order completion is
        // guaranteed, then check order anyway.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map(8, items, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 10
        });
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: u64| -> u64 {
            // A little arithmetic with a data-dependent trip count.
            (0..i % 97).fold(i, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let serial = par_map(1, (0..200).collect(), work);
        let parallel = par_map(7, (0..200).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicU32::new(0);
        let out = par_map(4, (0..100).collect::<Vec<u32>>(), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = par_map(8, Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map(8, vec![5u8], |x| x + 1), vec![6]);
    }
}
