//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--ops N] [--quick] [--seed S] [--jobs N] [--out DIR]
//!                       [--bench-out FILE] [--trace-out FILE]
//!                       [--checkpoint DIR] [--resume] [--run-timeout SECS]
//! repro all [same flags]
//! repro list
//! ```
//!
//! Each simulation is single-threaded and deterministic; `--jobs N` sets
//! how many independent runs the harness fans out at once (default: one
//! per available core). Reports are byte-identical whatever the worker
//! count.
//!
//! With `--out DIR`, each experiment's report is also written to
//! `DIR/<experiment>.txt`. With `--bench-out FILE`, a machine-readable
//! JSON record of per-experiment wall-clock time, simulation throughput
//! and aggregate controller activity is written to `FILE` (and a
//! human-readable controller-activity table is appended to stdout).
//! With `--trace-out FILE`, every controller decision in every
//! simulation is written to `FILE` as JSON lines, one event per line,
//! tagged with the run that produced it.
//!
//! The sweep is fault-isolated: an experiment that panics, reports a
//! typed error, or (with `--run-timeout SECS`) exceeds its wall-clock
//! budget does not stop the others. Transient failures (panics and
//! timeouts) are retried once. The sweep finishes everything it can,
//! prints a failure table naming what it could not, and exits nonzero if
//! anything failed. With `--checkpoint DIR`, each completed experiment is
//! recorded on the spot; `--resume` replays recorded entries instead of
//! re-running them, regenerating byte-identical reports (DESIGN.md §7).

use std::process::ExitCode;
use std::time::{Duration, Instant};

use mcd_bench::checkpoint::{write_file, CheckpointDir, CompletedRun};
use mcd_bench::error::RunError;
use mcd_bench::experiments;
use mcd_bench::parallel::par_try_map;
use mcd_bench::runner::{ControllerActivity, RunConfig, RunSet};
use mcd_bench::table::Table;

fn usage() -> String {
    format!(
        "usage: repro <experiment>...|all|list [--ops N] [--quick] [--seed S] [--jobs N] \
         [--out DIR] [--bench-out FILE] [--trace-out FILE] \
         [--checkpoint DIR] [--resume] [--run-timeout SECS]\n\
         experiments: {}",
        experiments::ALL.join(", ")
    )
}

/// Backend-domain display names, indexed like [`ControllerActivity`].
const DOMAINS: [&str; 3] = ControllerActivity::DOMAINS;

/// Renders the human-readable controller-activity summary (printed to
/// stdout only when `--bench-out` is given).
fn activity_table(a: &ControllerActivity) -> String {
    let mut t = Table::new([
        "domain",
        "relay arms",
        "fires",
        "resets",
        "steps up",
        "steps down",
        "mean reaction",
        "sync stalls",
        "slew time",
    ]);
    for (i, domain) in DOMAINS.iter().enumerate() {
        let reaction = match a.mean_reaction_time_ns(i) {
            Some(ns) => format!("{ns:.1} ns"),
            None => "-".to_string(),
        };
        t.row([
            domain.to_string(),
            a.relay_arms[i].to_string(),
            a.relay_fires[i].to_string(),
            a.relay_resets[i].to_string(),
            a.freq_steps_up[i].to_string(),
            a.freq_steps_down[i].to_string(),
            reaction,
            a.sync_enqueues[i].to_string(),
            format!("{:.1} us", a.transition_time_ps[i] as f64 / 1e6),
        ]);
    }
    format!(
        "Controller activity (aggregate over all simulations):\n\n{}",
        t.render()
    )
}

fn bench_report(
    jobs: usize,
    total_wall_s: f64,
    records: &[(&'static str, CompletedRun)],
    activity: &ControllerActivity,
) -> String {
    let runs: u64 = records.iter().map(|(_, r)| r.runs).sum();
    let instructions: u64 = records.iter().map(|(_, r)| r.instructions).sum();
    let hits: u64 = records.iter().map(|(_, r)| r.baseline_hits).sum();
    // Aggregate throughput is meaningful only over the experiments that
    // actually simulate; analysis experiments contribute zero
    // instructions in epsilon wall-clock and would only add noise.
    let sim_wall_s: f64 = records
        .iter()
        .filter(|(_, r)| r.kind == experiments::Kind::Simulation.label())
        .map(|(_, r)| r.wall_s)
        .sum();
    let mips = if sim_wall_s > 0.0 {
        instructions as f64 / sim_wall_s / 1e6
    } else {
        0.0
    };
    let body: Vec<String> = records
        .iter()
        .map(|(id, r)| format!("    {}", r.record_json(id)))
        .collect();
    format!(
        "{{\n  \"jobs\": {jobs},\n  \"total_wall_s\": {total_wall_s:.3},\n  \
         \"total_runs\": {runs},\n  \"total_instructions\": {instructions},\n  \
         \"total_baseline_cache_hits\": {hits},\n  \"aggregate_simulated_mips\": {mips:.2},\n  \
         \"controller_activity\": {},\n  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        activity.to_json(),
        body.join(",\n")
    )
}

/// Escapes a run label for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders collected event traces as JSON lines: one event per line,
/// each tagged with the run label that produced it.
fn render_traces(traces: &[(String, Vec<mcd_sim::TraceEvent>)]) -> String {
    let mut out = String::new();
    for (label, events) in traces {
        let run = json_escape(label);
        for ev in events {
            let body = ev.to_json();
            // Splice the run tag into the event object: {"run":"...",...}.
            out.push_str(&format!("{{\"run\": \"{run}\", {}\n", &body[1..]));
        }
    }
    out
}

/// Renders the end-of-sweep failure table.
fn failure_table(failures: &[(&'static str, RunError)], total: usize) -> String {
    let mut t = Table::new(["experiment", "class", "error"]);
    for (id, e) in failures {
        t.row([id.to_string(), e.kind().to_string(), e.to_string()]);
    }
    format!(
        "FAILURES: {} of {total} experiments failed\n\n{}",
        failures.len(),
        t.render()
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if args[0] == "list" {
        for e in experiments::ALL {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }

    // Leading non-flag arguments are experiment ids ("headline" is a
    // friendlier alias for the reconstructed Figure 9).
    let mut ids: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        let id = match args[i].as_str() {
            "headline" => "fig9",
            other => other,
        };
        if id == "all" {
            ids.extend(experiments::ALL);
        } else if let Some(&known) = experiments::ALL.iter().find(|&&e| e == id) {
            if !ids.contains(&known) {
                ids.push(known);
            }
        } else {
            eprintln!("unknown experiment {id}\n{}", usage());
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("no experiments named\n{}", usage());
        return ExitCode::FAILURE;
    }

    let mut cfg = RunConfig::full();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut run_timeout: Option<Duration> = None;
    let mut jobs = mcd_bench::parallel::default_jobs();
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--resume" => resume = true,
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--bench-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--bench-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                bench_out = Some(std::path::PathBuf::from(file));
            }
            "--trace-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--trace-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                trace_out = Some(std::path::PathBuf::from(file));
            }
            "--checkpoint" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--checkpoint needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                checkpoint_dir = Some(std::path::PathBuf::from(dir));
            }
            "--run-timeout" => {
                i += 1;
                let Some(secs) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--run-timeout needs seconds\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if !(secs > 0.0 && secs.is_finite()) {
                    eprintln!("--run-timeout needs positive seconds\n{}", usage());
                    return ExitCode::FAILURE;
                }
                run_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume needs --checkpoint DIR\n{}", usage());
        return ExitCode::FAILURE;
    }

    let checkpoint = match &checkpoint_dir {
        Some(dir) => match CheckpointDir::open(dir, &CheckpointDir::fingerprint(&cfg)) {
            Ok(ck) => Some(ck),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let rs = RunSet::init_global(jobs, trace_out.is_some());
    let all_start = Instant::now();

    // Replay checkpointed entries, then run what is left. One ordered
    // outcome slot per experiment either way.
    let mut outcomes: Vec<Option<Result<CompletedRun, RunError>>> = Vec::new();
    outcomes.resize_with(ids.len(), || None);
    if resume {
        let ck = checkpoint.as_ref().expect("checked above");
        for (slot, id) in outcomes.iter_mut().zip(&ids) {
            if let Some(run) = ck.load(id) {
                *slot = Some(Ok(run));
            }
        }
    }
    let pending: Vec<(usize, &'static str)> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(n, _)| (n, ids[n]))
        .collect();

    // The experiments themselves parallelize *inside* a run via the
    // RunSet worker pool; the sweep over experiments runs one at a time
    // (jobs=1) so per-experiment counter deltas stay attributable. The
    // isolation lives in par_try_map: panic capture, the optional
    // per-run wall-clock budget, and one retry for transient failures.
    let sweep_cfg = cfg.clone();
    let sweep_ck = checkpoint.clone();
    let results = par_try_map(1, pending.clone(), run_timeout, move |(_, id)| {
        let before = rs.stats();
        let start = Instant::now();
        let report = experiments::run_on(rs, id, &sweep_cfg)?;
        let wall_s = start.elapsed().as_secs_f64();
        let after = rs.stats();
        let run = CompletedRun {
            report,
            kind: experiments::kind(id)
                .expect("ids are validated against ALL")
                .label()
                .to_string(),
            wall_s,
            runs: after.runs - before.runs,
            instructions: after.instructions - before.instructions,
            baseline_hits: after.baseline_hits - before.baseline_hits,
        };
        if let Some(ck) = &sweep_ck {
            ck.store(id, &run)?;
        }
        Ok(run)
    });
    for ((n, _), result) in pending.into_iter().zip(results) {
        outcomes[n] = Some(result);
    }

    // Reports in request order; failures collected for the table.
    let mut records: Vec<(&'static str, CompletedRun)> = Vec::new();
    let mut failures: Vec<(&'static str, RunError)> = Vec::new();
    let mut exit = ExitCode::SUCCESS;
    for (id, outcome) in ids.iter().zip(outcomes) {
        match outcome.expect("every slot is replayed or run") {
            Ok(run) => {
                if !records.is_empty() {
                    println!("\n{}\n", "=".repeat(78));
                }
                println!("{}", run.report);
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.txt"));
                    if let Err(e) = write_file(&path, run.report.as_bytes()) {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                records.push((id, run));
            }
            Err(e) => failures.push((id, e)),
        }
    }
    if let Some(path) = &trace_out {
        let traces = rs.drain_traces().unwrap_or_default();
        if let Err(e) = write_file(path, render_traces(&traces).as_bytes()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &bench_out {
        let activity = rs.activity();
        println!("\n{}\n", "=".repeat(78));
        println!("{}", activity_table(&activity));
        let json = bench_report(
            rs.jobs(),
            all_start.elapsed().as_secs_f64(),
            &records,
            &activity,
        );
        if let Err(e) = write_file(path, json.as_bytes()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if !failures.is_empty() {
        println!("\n{}\n", "=".repeat(78));
        println!("{}", failure_table(&failures, ids.len()));
        if checkpoint.is_some() && !resume {
            println!("completed experiments are checkpointed; re-run with --resume to retry only the failures");
        }
        exit = ExitCode::FAILURE;
    }
    exit
}
