//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--ops N] [--quick] [--seed S] [--jobs N] [--out DIR]
//!                       [--bench-out FILE] [--trace-out FILE]
//!                       [--checkpoint DIR] [--resume] [--run-timeout SECS]
//! repro all [same flags]
//! repro list
//! repro trace analyze FILE [--out FILE]
//! repro profile <experiment>... [--ops N] [--quick] [--seed S] [--jobs N]
//! ```
//!
//! Each simulation is single-threaded and deterministic; `--jobs N` sets
//! how many independent runs the harness fans out at once (default: one
//! per available core). Reports are byte-identical whatever the worker
//! count.
//!
//! With `--out DIR`, each experiment's report is also written to
//! `DIR/<experiment>.txt`. With `--bench-out FILE`, a machine-readable
//! JSON record of per-experiment wall-clock time, simulation throughput
//! and aggregate controller activity is written to `FILE` (and a
//! human-readable controller-activity table is appended to stdout).
//! With `--trace-out FILE`, every controller decision in every
//! simulation is written to `FILE` as JSON lines, one event per line,
//! tagged with the run that produced it.
//!
//! The sweep is fault-isolated: an experiment that panics, reports a
//! typed error, or (with `--run-timeout SECS`) exceeds its wall-clock
//! budget does not stop the others. Transient failures (panics and
//! timeouts) are retried once. The sweep finishes everything it can,
//! prints a failure table naming what it could not, and exits nonzero if
//! anything failed. With `--checkpoint DIR`, each completed experiment is
//! recorded on the spot; `--resume` replays recorded entries instead of
//! re-running them, regenerating byte-identical reports (DESIGN.md §7).
//!
//! `repro trace analyze FILE` consumes a `--trace-out` file offline
//! (deviation episodes, reaction-time distributions, a per-domain
//! timeline — DESIGN.md §9); its report is a pure function of the trace
//! bytes. `repro profile <ids>` re-runs experiments with the span
//! profiler and distribution telemetry enabled and prints where the
//! wall time went.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use mcd_bench::checkpoint::{write_file, CheckpointDir, CompletedRun};
use mcd_bench::error::RunError;
use mcd_bench::experiments;
use mcd_bench::parallel::par_try_map;
use mcd_bench::runner::{ControllerActivity, RunConfig, RunSet};
use mcd_bench::table::Table;
use mcd_bench::trace_analyze;
use mcd_sim::SimTelemetry;

fn usage() -> String {
    format!(
        "usage: repro <experiment>...|all|list [--ops N] [--quick] [--seed S] [--jobs N] \
         [--shard-ops N] [--shard-secs S] [--out DIR] [--bench-out FILE] [--trace-out FILE] \
         [--checkpoint DIR] [--resume] [--run-timeout SECS]\n\
         \x20      repro trace analyze FILE [--out FILE]\n\
         \x20      repro profile <experiment>... [--ops N] [--quick] [--seed S] [--jobs N]\n\
         experiments: {}\n\
         --shard-ops N splits each simulation into N-instruction segments at snapshot\n\
         boundaries (0 disables; reports are byte-identical either way);\n\
         --shard-secs S picks the shard length from a target segment wall time.",
        experiments::ALL.join(", ")
    )
}

/// Calibration for `--shard-secs`: simulated instructions per wall
/// second on a typical core (order-of-magnitude; sharding only needs the
/// segment length to land near the requested duration).
const SHARD_OPS_PER_SEC: f64 = 1_500_000.0;

/// Backend-domain display names, indexed like [`ControllerActivity`].
const DOMAINS: [&str; 3] = ControllerActivity::DOMAINS;

/// Renders the human-readable controller-activity summary (printed to
/// stdout only when `--bench-out` is given).
fn activity_table(a: &ControllerActivity) -> String {
    let mut t = Table::new([
        "domain",
        "relay arms",
        "fires",
        "resets",
        "steps up",
        "steps down",
        "mean reaction",
        "sync stalls",
        "slew time",
    ]);
    for (i, domain) in DOMAINS.iter().enumerate() {
        let reaction = match a.mean_reaction_time_ns(i) {
            Some(ns) => format!("{ns:.1} ns"),
            None => "-".to_string(),
        };
        t.row([
            domain.to_string(),
            a.relay_arms[i].to_string(),
            a.relay_fires[i].to_string(),
            a.relay_resets[i].to_string(),
            a.freq_steps_up[i].to_string(),
            a.freq_steps_down[i].to_string(),
            reaction,
            a.sync_enqueues[i].to_string(),
            format!("{:.1} us", a.transition_time_ps[i] as f64 / 1e6),
        ]);
    }
    format!(
        "Controller activity (aggregate over all simulations):\n\n{}",
        t.render()
    )
}

fn bench_report(
    jobs: usize,
    total_wall_s: f64,
    stats: &mcd_bench::runner::RunStats,
    compute_s: f64,
    records: &[(&'static str, CompletedRun)],
    activity: &ControllerActivity,
    telemetry: Option<&SimTelemetry>,
) -> String {
    // Totals come from the RunSet's global counters rather than summing
    // the per-experiment records: under shared-pool attribution the
    // memoized baseline computes are charged globally only (whichever
    // experiment happens to trigger them is a scheduling accident), and
    // under --resume the replayed records describe a *previous*
    // invocation's work. The totals therefore count exactly what this
    // invocation simulated.
    let mips = if compute_s > 0.0 {
        stats.instructions as f64 / compute_s / 1e6
    } else {
        0.0
    };
    let body: Vec<String> = records
        .iter()
        .map(|(id, r)| format!("    {}", r.record_json(id)))
        .collect();
    let telemetry_block = match telemetry {
        Some(tel) => format!("  \"telemetry\": {},\n", telemetry_json(tel)),
        None => String::new(),
    };
    format!(
        "{{\n  \"jobs\": {jobs},\n  \"total_wall_s\": {total_wall_s:.3},\n  \
         \"total_runs\": {},\n  \"total_instructions\": {},\n  \
         \"total_baseline_requests\": {},\n  \"aggregate_simulated_mips\": {mips:.2},\n  \
         \"total_events_processed\": {},\n  \"total_cycles_skipped\": {},\n  \
         \"controller_activity\": {},\n{telemetry_block}  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        stats.runs,
        stats.instructions,
        stats.baseline_requests,
        stats.events_processed,
        stats.cycles_skipped,
        activity.to_json(),
        body.join(",\n")
    )
}

/// Renders the per-domain reaction-time and occupancy distributions
/// (printed alongside the activity table when telemetry is enabled).
fn telemetry_table(tel: &SimTelemetry) -> String {
    let mut t = Table::new([
        "domain",
        "reactions",
        "p50",
        "p90",
        "p99",
        "max",
        "occ samples",
        "occ p99",
        "occ max",
    ]);
    for (i, domain) in DOMAINS.iter().enumerate() {
        let r = tel.reaction_ps[i].snapshot();
        let o = tel.occupancy[i].snapshot();
        let ns = |ps: u64| format!("{:.1} ns", ps as f64 / 1e3);
        t.row([
            domain.to_string(),
            r.count().to_string(),
            ns(r.p50()),
            ns(r.p90()),
            ns(r.p99()),
            ns(r.max()),
            o.count().to_string(),
            o.p99().to_string(),
            o.max().to_string(),
        ]);
    }
    format!(
        "Reaction-time and queue-occupancy distributions (aggregate):\n\n{}",
        t.render()
    )
}

/// JSON block of per-domain distribution summaries for `--bench-out`.
fn telemetry_json(tel: &SimTelemetry) -> String {
    let domains: Vec<String> = DOMAINS
        .iter()
        .enumerate()
        .map(|(i, domain)| {
            let r = tel.reaction_ps[i].snapshot();
            let o = tel.occupancy[i].snapshot();
            format!(
                "{{\"domain\": \"{domain}\", \"reactions\": {}, \
                 \"reaction_p50_ns\": {:.1}, \"reaction_p99_ns\": {:.1}, \
                 \"reaction_max_ns\": {:.1}, \"occupancy_samples\": {}, \
                 \"occupancy_p99\": {}, \"occupancy_max\": {}}}",
                r.count(),
                r.p50() as f64 / 1e3,
                r.p99() as f64 / 1e3,
                r.max() as f64 / 1e3,
                o.count(),
                o.p99(),
                o.max()
            )
        })
        .collect();
    format!("[{}]", domains.join(", "))
}

/// Renders the end-of-sweep failure table.
fn failure_table(failures: &[(&'static str, RunError)], total: usize) -> String {
    let mut t = Table::new(["experiment", "class", "error"]);
    for (id, e) in failures {
        t.row([id.to_string(), e.kind().to_string(), e.to_string()]);
    }
    format!(
        "FAILURES: {} of {total} experiments failed\n\n{}",
        failures.len(),
        t.render()
    )
}

/// `repro trace analyze FILE [--out FILE]`: offline analysis of a
/// `--trace-out` JSONL file. The report is a pure function of the trace
/// bytes, so it can be golden-gated.
fn trace_cmd(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) != Some("analyze") {
        eprintln!("trace subcommands: analyze FILE [--out FILE]\n{}", usage());
        return ExitCode::FAILURE;
    }
    let Some(file) = args.get(1) else {
        eprintln!("trace analyze needs a FILE\n{}", usage());
        return ExitCode::FAILURE;
    };
    let mut out: Option<std::path::PathBuf> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out = Some(std::path::PathBuf::from(path));
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let jsonl = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match trace_analyze::analyze(&jsonl) {
        Ok(analysis) => analysis.report(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{report}");
    if let Some(path) = &out {
        if let Err(e) = write_file(path, report.as_bytes()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `repro profile <ids>`: re-runs experiments with the span profiler and
/// distribution telemetry enabled and prints a per-experiment phase
/// breakdown. Wall readings vary run to run, so this output is never
/// golden-gated.
fn profile_cmd(args: &[String]) -> ExitCode {
    let mut ids: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        let id = match args[i].as_str() {
            "headline" => "fig9",
            other => other,
        };
        if id == "all" {
            ids.extend(experiments::ALL);
        } else if let Some(&known) = experiments::ALL.iter().find(|&&e| e == id) {
            if !ids.contains(&known) {
                ids.push(known);
            }
        } else {
            eprintln!("unknown experiment {id}\n{}", usage());
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("no experiments named\n{}", usage());
        return ExitCode::FAILURE;
    }
    let mut cfg = RunConfig::full();
    let mut jobs = mcd_bench::parallel::default_jobs();
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let rs = RunSet::new(jobs).with_telemetry().with_profiling();
    for (n, id) in ids.iter().enumerate() {
        let before = rs.profiler().snapshot();
        let wall_before = rs.wall_snapshot();
        let start = Instant::now();
        if let Err(e) = experiments::run_on(&rs, id, &cfg) {
            eprintln!("{id}: {e}");
            return ExitCode::FAILURE;
        }
        let wall_s = start.elapsed().as_secs_f64();
        let phases = rs.profiler().snapshot().diff(&before);
        let wall = rs.wall_snapshot().diff(&wall_before);
        let mut t = Table::new(["phase", "calls", "wall", "share"]);
        for p in &phases.phases {
            // Share of the experiment's wall clock; nested paths (e.g.
            // baseline/simulate) also count toward their parents, so
            // shares need not sum to 100%.
            let share = p.seconds() * 100.0 / wall_s.max(1e-9);
            t.row([
                p.path.clone(),
                p.calls.to_string(),
                format!("{:.3} s", p.seconds()),
                format!("{share:.1}%"),
            ]);
        }
        if n > 0 {
            println!();
        }
        println!(
            "{id}: {wall_s:.3} s wall, {} simulations (per-run p50 {:.3} s, p99 {:.3} s)\n\n{}",
            wall.count(),
            wall.p50() as f64 / 1e6,
            wall.p99() as f64 / 1e6,
            t.render()
        );
    }
    if let Some(tel) = rs.telemetry() {
        println!("\n{}", telemetry_table(tel));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if args[0] == "list" {
        for e in experiments::ALL {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "trace" {
        return trace_cmd(&args[1..]);
    }
    if args[0] == "profile" {
        return profile_cmd(&args[1..]);
    }

    // Leading non-flag arguments are experiment ids ("headline" is a
    // friendlier alias for the reconstructed Figure 9).
    let mut ids: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        let id = match args[i].as_str() {
            "headline" => "fig9",
            other => other,
        };
        if id == "all" {
            ids.extend(experiments::ALL);
        } else if let Some(&known) = experiments::ALL.iter().find(|&&e| e == id) {
            if !ids.contains(&known) {
                ids.push(known);
            }
        } else {
            eprintln!("unknown experiment {id}\n{}", usage());
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("no experiments named\n{}", usage());
        return ExitCode::FAILURE;
    }

    let mut cfg = RunConfig::full();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut run_timeout: Option<Duration> = None;
    let mut jobs = mcd_bench::parallel::default_jobs();
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--resume" => resume = true,
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--bench-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--bench-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                bench_out = Some(std::path::PathBuf::from(file));
            }
            "--trace-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--trace-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                trace_out = Some(std::path::PathBuf::from(file));
            }
            "--checkpoint" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--checkpoint needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                checkpoint_dir = Some(std::path::PathBuf::from(dir));
            }
            "--run-timeout" => {
                i += 1;
                let Some(secs) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--run-timeout needs seconds\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if !(secs > 0.0 && secs.is_finite()) {
                    eprintln!("--run-timeout needs positive seconds\n{}", usage());
                    return ExitCode::FAILURE;
                }
                run_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            "--shard-ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--shard-ops needs an integer (0 disables)\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_shard_ops(n);
            }
            "--shard-secs" => {
                i += 1;
                let Some(secs) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--shard-secs needs seconds\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if !(secs > 0.0 && secs.is_finite()) {
                    eprintln!("--shard-secs needs positive seconds\n{}", usage());
                    return ExitCode::FAILURE;
                }
                cfg = cfg.with_shard_ops((secs * SHARD_OPS_PER_SEC).max(1.0) as u64);
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume needs --checkpoint DIR\n{}", usage());
        return ExitCode::FAILURE;
    }

    let checkpoint = match &checkpoint_dir {
        Some(dir) => match CheckpointDir::open(dir, &CheckpointDir::fingerprint(&cfg)) {
            Ok(ck) => Some(ck),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Distribution telemetry rides along whenever a machine-readable
    // benchmark record was asked for; the default path keeps NullSink.
    let rs = RunSet::init_global(jobs, trace_out.is_some(), bench_out.is_some(), false);
    let all_start = Instant::now();

    // Replay checkpointed entries, then run what is left. One ordered
    // outcome slot per experiment either way.
    let mut outcomes: Vec<Option<Result<CompletedRun, RunError>>> = Vec::new();
    outcomes.resize_with(ids.len(), || None);
    if resume {
        let ck = checkpoint.as_ref().expect("checked above");
        for (slot, id) in outcomes.iter_mut().zip(&ids) {
            if let Some(run) = ck.load(id) {
                *slot = Some(Ok(run));
            }
        }
    }
    let pending: Vec<(usize, &'static str)> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(n, _)| (n, ids[n]))
        .collect();

    // Experiments submit their runs to one process-wide work-stealing
    // pool (capped at --jobs workers), so the sweep drives several
    // experiments concurrently without oversubscribing: an experiment's
    // long tail run no longer strands the other cores. Per-experiment
    // numbers come from tag attribution, not counter deltas, so they
    // stay honest while experiments interleave. The isolation lives in
    // par_try_map: panic capture, the optional per-run wall-clock
    // budget, and one retry for transient failures (reset_tag keeps a
    // retried attempt from double-charging its first try).
    let sweep_cfg = cfg.clone();
    let sweep_ck = checkpoint.clone();
    let drivers = jobs.min(pending.len()).max(1);
    let results = par_try_map(drivers, pending.clone(), run_timeout, move |(_, id)| {
        rs.reset_tag(id);
        let start = Instant::now();
        let report = rs.with_tag(id, || experiments::run_on(rs, id, &sweep_cfg))?;
        let driver_wall_s = start.elapsed().as_secs_f64();
        let kind = experiments::kind(id).expect("ids are validated against ALL");
        let tag = rs.tag_stats(id);
        // Simulation experiments report the machine time their runs
        // actually consumed (the driver's elapsed clock would include
        // other experiments' runs interleaving on the shared pool);
        // analysis experiments do no pool work, so the driver clock is
        // the honest figure.
        let wall_s = if kind == experiments::Kind::Simulation && tag.compute_us > 0 {
            tag.wall_s()
        } else {
            driver_wall_s
        };
        let run = CompletedRun {
            report,
            kind: kind.label().to_string(),
            wall_s,
            runs: tag.runs,
            instructions: tag.instructions,
            baseline_requests: tag.baseline_requests,
            events_processed: tag.events_processed,
            cycles_skipped: tag.cycles_skipped,
            run_wall_p50_s: tag.run_wall_p50_s(),
            run_wall_p99_s: tag.run_wall_p99_s(),
        };
        if let Some(ck) = &sweep_ck {
            ck.store(id, &run)?;
        }
        Ok(run)
    });
    for ((n, _), result) in pending.into_iter().zip(results) {
        outcomes[n] = Some(result);
    }

    // Reports in request order; failures collected for the table.
    let mut records: Vec<(&'static str, CompletedRun)> = Vec::new();
    let mut failures: Vec<(&'static str, RunError)> = Vec::new();
    let mut exit = ExitCode::SUCCESS;
    for (id, outcome) in ids.iter().zip(outcomes) {
        match outcome.expect("every slot is replayed or run") {
            Ok(run) => {
                if !records.is_empty() {
                    println!("\n{}\n", "=".repeat(78));
                }
                println!("{}", run.report);
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.txt"));
                    if let Err(e) = write_file(&path, run.report.as_bytes()) {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                records.push((id, run));
            }
            Err(e) => failures.push((id, e)),
        }
    }
    if let Some(path) = &trace_out {
        let traces = rs.drain_traces().unwrap_or_default();
        if let Err(e) = write_file(path, trace_analyze::render_traces(&traces).as_bytes()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &bench_out {
        let activity = rs.activity();
        println!("\n{}\n", "=".repeat(78));
        println!("{}", activity_table(&activity));
        if let Some(tel) = rs.telemetry() {
            println!("\n{}", telemetry_table(tel));
        }
        let json = bench_report(
            rs.jobs(),
            all_start.elapsed().as_secs_f64(),
            &rs.stats(),
            rs.wall_snapshot().sum() as f64 / 1e6,
            &records,
            &activity,
            rs.telemetry(),
        );
        if let Err(e) = write_file(path, json.as_bytes()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if !failures.is_empty() {
        println!("\n{}\n", "=".repeat(78));
        println!("{}", failure_table(&failures, ids.len()));
        if checkpoint.is_some() && !resume {
            println!("completed experiments are checkpointed; re-run with --resume to retry only the failures");
        }
        exit = ExitCode::FAILURE;
    }
    exit
}
