//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--ops N] [--quick] [--seed S] [--jobs N] [--out DIR]
//!                    [--bench-out FILE] [--trace-out FILE]
//! repro all [--ops N] [--jobs N] [--out DIR] [--bench-out FILE] [--trace-out FILE]
//! repro list
//! ```
//!
//! Each simulation is single-threaded and deterministic; `--jobs N` sets
//! how many independent runs the harness fans out at once (default: one
//! per available core). Reports are byte-identical whatever the worker
//! count.
//!
//! With `--out DIR`, each experiment's report is also written to
//! `DIR/<experiment>.txt`. With `--bench-out FILE`, a machine-readable
//! JSON record of per-experiment wall-clock time, simulation throughput
//! and aggregate controller activity is written to `FILE` (and a
//! human-readable controller-activity table is appended to stdout).
//! With `--trace-out FILE`, every controller decision in every
//! simulation is written to `FILE` as JSON lines, one event per line,
//! tagged with the run that produced it.

use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

use mcd_bench::experiments;
use mcd_bench::runner::{ControllerActivity, RunConfig, RunSet};
use mcd_bench::table::Table;

fn usage() -> String {
    format!(
        "usage: repro <experiment|all|list> [--ops N] [--quick] [--seed S] [--jobs N] \
         [--out DIR] [--bench-out FILE] [--trace-out FILE]\n\
         experiments: {}",
        experiments::ALL.join(", ")
    )
}

/// Backend-domain display names, indexed like [`ControllerActivity`].
const DOMAINS: [&str; 3] = ["INT", "FP", "LS"];

/// One experiment's timing record for the `--bench-out` report.
struct BenchRecord {
    id: &'static str,
    kind: experiments::Kind,
    wall_s: f64,
    runs: u64,
    instructions: u64,
    baseline_hits: u64,
}

impl BenchRecord {
    fn simulated_mips(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.instructions as f64 / self.wall_s / 1e6
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"experiment\": \"{}\", \"kind\": \"{}\", \"wall_s\": {:.3}, \"runs\": {}, \
             \"instructions\": {}, \"baseline_cache_hits\": {}, \"simulated_mips\": {:.2}}}",
            self.id,
            self.kind.label(),
            self.wall_s,
            self.runs,
            self.instructions,
            self.baseline_hits,
            self.simulated_mips()
        )
    }
}

/// Formats an optional float as JSON (`null` when absent).
fn json_opt(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.3}"),
        _ => "null".to_string(),
    }
}

fn activity_json(a: &ControllerActivity) -> String {
    let per_domain: Vec<String> = (0..3)
        .map(|i| {
            format!(
                "    {{\"domain\": \"{}\", \"relay_arms\": {}, \"relay_fires\": {}, \
                 \"relay_resets\": {}, \"freq_steps_up\": {}, \"freq_steps_down\": {}, \
                 \"mean_reaction_ns\": {}, \"sync_enqueues\": {}, \"fmin_cycles\": {}, \
                 \"fmax_cycles\": {}, \"transition_time_ps\": {}}}",
                DOMAINS[i],
                a.relay_arms[i],
                a.relay_fires[i],
                a.relay_resets[i],
                a.freq_steps_up[i],
                a.freq_steps_down[i],
                json_opt(a.mean_reaction_time_ns(i)),
                a.sync_enqueues[i],
                a.fmin_cycles[i],
                a.fmax_cycles[i],
                a.transition_time_ps[i],
            )
        })
        .collect();
    format!("[\n{}\n  ]", per_domain.join(",\n"))
}

/// Renders the human-readable controller-activity summary (printed to
/// stdout only when `--bench-out` is given).
fn activity_table(a: &ControllerActivity) -> String {
    let mut t = Table::new([
        "domain",
        "relay arms",
        "fires",
        "resets",
        "steps up",
        "steps down",
        "mean reaction",
        "sync stalls",
        "slew time",
    ]);
    for (i, domain) in DOMAINS.iter().enumerate() {
        let reaction = match a.mean_reaction_time_ns(i) {
            Some(ns) => format!("{ns:.1} ns"),
            None => "-".to_string(),
        };
        t.row([
            domain.to_string(),
            a.relay_arms[i].to_string(),
            a.relay_fires[i].to_string(),
            a.relay_resets[i].to_string(),
            a.freq_steps_up[i].to_string(),
            a.freq_steps_down[i].to_string(),
            reaction,
            a.sync_enqueues[i].to_string(),
            format!("{:.1} us", a.transition_time_ps[i] as f64 / 1e6),
        ]);
    }
    format!(
        "Controller activity (aggregate over all simulations):\n\n{}",
        t.render()
    )
}

fn bench_report(
    jobs: usize,
    total_wall_s: f64,
    records: &[BenchRecord],
    activity: &ControllerActivity,
) -> String {
    let runs: u64 = records.iter().map(|r| r.runs).sum();
    let instructions: u64 = records.iter().map(|r| r.instructions).sum();
    let hits: u64 = records.iter().map(|r| r.baseline_hits).sum();
    // Aggregate throughput is meaningful only over the experiments that
    // actually simulate; analysis experiments contribute zero
    // instructions in epsilon wall-clock and would only add noise.
    let sim_wall_s: f64 = records
        .iter()
        .filter(|r| r.kind == experiments::Kind::Simulation)
        .map(|r| r.wall_s)
        .sum();
    let mips = if sim_wall_s > 0.0 {
        instructions as f64 / sim_wall_s / 1e6
    } else {
        0.0
    };
    let body: Vec<String> = records.iter().map(BenchRecord::to_json).collect();
    format!(
        "{{\n  \"jobs\": {jobs},\n  \"total_wall_s\": {total_wall_s:.3},\n  \
         \"total_runs\": {runs},\n  \"total_instructions\": {instructions},\n  \
         \"total_baseline_cache_hits\": {hits},\n  \"aggregate_simulated_mips\": {mips:.2},\n  \
         \"controller_activity\": {},\n  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        activity_json(activity),
        body.join(",\n")
    )
}

/// Escapes a run label for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes collected event traces as JSON lines: one event per line,
/// each tagged with the run label that produced it.
fn write_traces(
    path: &std::path::Path,
    traces: &[(String, Vec<mcd_sim::TraceEvent>)],
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for (label, events) in traces {
        let run = json_escape(label);
        for ev in events {
            let body = ev.to_json();
            // Splice the run tag into the event object: {"run":"...",...}.
            writeln!(w, "{{\"run\": \"{run}\", {}", &body[1..])?;
        }
    }
    w.flush()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    // "headline" is a friendlier alias for the reconstructed Figure 9.
    let id = match args[0].as_str() {
        "headline" => "fig9",
        other => other,
    };
    if id == "list" {
        for e in experiments::ALL {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }

    let mut cfg = RunConfig::full();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut jobs = mcd_bench::parallel::default_jobs();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--bench-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--bench-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                bench_out = Some(std::path::PathBuf::from(file));
            }
            "--trace-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--trace-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                trace_out = Some(std::path::PathBuf::from(file));
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let ids: Vec<&'static str> = if id == "all" {
        experiments::ALL.to_vec()
    } else if let Some(&known) = experiments::ALL.iter().find(|&&e| e == id) {
        vec![known]
    } else {
        eprintln!("unknown experiment {id}\n{}", usage());
        return ExitCode::FAILURE;
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let rs = RunSet::init_global(jobs, trace_out.is_some());
    let mut records = Vec::with_capacity(ids.len());
    let all_start = Instant::now();
    for (n, id) in ids.iter().enumerate() {
        if n > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        let before = rs.stats();
        let start = Instant::now();
        let report = experiments::run(id, &cfg);
        let wall_s = start.elapsed().as_secs_f64();
        let after = rs.stats();
        records.push(BenchRecord {
            id,
            kind: experiments::kind(id),
            wall_s,
            runs: after.runs - before.runs,
            instructions: after.instructions - before.instructions,
            baseline_hits: after.baseline_hits - before.baseline_hits,
        });
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, &report) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &trace_out {
        let traces = rs.drain_traces().unwrap_or_default();
        if let Err(e) = write_traces(path, &traces) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &bench_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let activity = rs.activity();
        println!("\n{}\n", "=".repeat(78));
        println!("{}", activity_table(&activity));
        let json = bench_report(
            rs.jobs(),
            all_start.elapsed().as_secs_f64(),
            &records,
            &activity,
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
