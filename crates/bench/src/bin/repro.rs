//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--ops N] [--quick] [--seed S] [--jobs N] [--out DIR] [--bench-out FILE]
//! repro all [--ops N] [--jobs N] [--out DIR] [--bench-out FILE]
//! repro list
//! ```
//!
//! Each simulation is single-threaded and deterministic; `--jobs N` sets
//! how many independent runs the harness fans out at once (default: one
//! per available core). Reports are byte-identical whatever the worker
//! count.
//!
//! With `--out DIR`, each experiment's report is also written to
//! `DIR/<experiment>.txt`. With `--bench-out FILE`, a machine-readable
//! JSON record of per-experiment wall-clock time and simulation
//! throughput is written to `FILE`.

use std::process::ExitCode;
use std::time::Instant;

use mcd_bench::experiments;
use mcd_bench::runner::{RunConfig, RunSet};

fn usage() -> String {
    format!(
        "usage: repro <experiment|all|list> [--ops N] [--quick] [--seed S] [--jobs N] \
         [--out DIR] [--bench-out FILE]\n\
         experiments: {}",
        experiments::ALL.join(", ")
    )
}

/// One experiment's timing record for the `--bench-out` report.
struct BenchRecord {
    id: &'static str,
    wall_s: f64,
    runs: u64,
    instructions: u64,
    baseline_hits: u64,
}

impl BenchRecord {
    fn simulated_mips(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.instructions as f64 / self.wall_s / 1e6
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"experiment\": \"{}\", \"wall_s\": {:.3}, \"runs\": {}, \
             \"instructions\": {}, \"baseline_cache_hits\": {}, \"simulated_mips\": {:.2}}}",
            self.id,
            self.wall_s,
            self.runs,
            self.instructions,
            self.baseline_hits,
            self.simulated_mips()
        )
    }
}

fn bench_report(jobs: usize, total_wall_s: f64, records: &[BenchRecord]) -> String {
    let runs: u64 = records.iter().map(|r| r.runs).sum();
    let instructions: u64 = records.iter().map(|r| r.instructions).sum();
    let hits: u64 = records.iter().map(|r| r.baseline_hits).sum();
    let mips = if total_wall_s > 0.0 {
        instructions as f64 / total_wall_s / 1e6
    } else {
        0.0
    };
    let body: Vec<String> = records.iter().map(BenchRecord::to_json).collect();
    format!(
        "{{\n  \"jobs\": {jobs},\n  \"total_wall_s\": {total_wall_s:.3},\n  \
         \"total_runs\": {runs},\n  \"total_instructions\": {instructions},\n  \
         \"total_baseline_cache_hits\": {hits},\n  \"aggregate_simulated_mips\": {mips:.2},\n  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    // "headline" is a friendlier alias for the reconstructed Figure 9.
    let id = match args[0].as_str() {
        "headline" => "fig9",
        other => other,
    };
    if id == "list" {
        for e in experiments::ALL {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }

    let mut cfg = RunConfig::full();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut jobs = mcd_bench::parallel::default_jobs();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--bench-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--bench-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                bench_out = Some(std::path::PathBuf::from(file));
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let ids: Vec<&'static str> = if id == "all" {
        experiments::ALL.to_vec()
    } else if let Some(&known) = experiments::ALL.iter().find(|&&e| e == id) {
        vec![known]
    } else {
        eprintln!("unknown experiment {id}\n{}", usage());
        return ExitCode::FAILURE;
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let rs = RunSet::init_global(jobs);
    let mut records = Vec::with_capacity(ids.len());
    let all_start = Instant::now();
    for (n, id) in ids.iter().enumerate() {
        if n > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        let before = rs.stats();
        let start = Instant::now();
        let report = experiments::run(id, &cfg);
        let wall_s = start.elapsed().as_secs_f64();
        let after = rs.stats();
        records.push(BenchRecord {
            id,
            wall_s,
            runs: after.runs - before.runs,
            instructions: after.instructions - before.instructions,
            baseline_hits: after.baseline_hits - before.baseline_hits,
        });
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, &report) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &bench_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let json = bench_report(rs.jobs(), all_start.elapsed().as_secs_f64(), &records);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
