//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--ops N] [--quick] [--seed S] [--jobs N] [--out DIR]
//!                       [--bench-out FILE] [--trace-out FILE]
//!                       [--checkpoint DIR] [--resume] [--run-timeout SECS]
//! repro all [same flags]
//! repro list
//! repro trace analyze FILE [--out FILE] [--episodes] [--worst N]
//! repro trace convert FILE --out FILE
//! repro trace replay FILE.mcdt --episode K
//! repro profile <experiment>... [--ops N] [--quick] [--seed S] [--jobs N]
//! ```
//!
//! Each simulation is single-threaded and deterministic; `--jobs N` sets
//! how many independent runs the harness fans out at once (default: one
//! per available core). Reports are byte-identical whatever the worker
//! count.
//!
//! With `--out DIR`, each experiment's report is also written to
//! `DIR/<experiment>.txt`. With `--bench-out FILE`, a machine-readable
//! JSON record of per-experiment wall-clock time, simulation throughput
//! and aggregate controller activity is written to `FILE` (and a
//! human-readable controller-activity table is appended to stdout).
//! With `--trace-out FILE`, every controller decision in every
//! simulation is written to `FILE` as JSON lines, one event per line,
//! tagged with the run that produced it — or, when `FILE` ends in
//! `.mcdt`, as the compact binary flight-recorder format (DESIGN.md
//! §14), which additionally carries shard-boundary machine snapshots
//! and an episode seek index for `trace replay`.
//!
//! The sweep is fault-isolated: an experiment that panics, reports a
//! typed error, or (with `--run-timeout SECS`) exceeds its wall-clock
//! budget does not stop the others. Transient failures (panics and
//! timeouts) are retried once. The sweep finishes everything it can,
//! prints a failure table naming what it could not, and exits nonzero if
//! anything failed. With `--checkpoint DIR`, each completed experiment is
//! recorded on the spot; `--resume` replays recorded entries instead of
//! re-running them, regenerating byte-identical reports (DESIGN.md §7).
//!
//! `repro trace analyze FILE` consumes a `--trace-out` file offline
//! (deviation episodes, reaction-time distributions, a per-domain
//! timeline — DESIGN.md §9); its report is a pure function of the trace
//! bytes. `--episodes`/`--worst N` switch to the episode-catalog view.
//! `repro trace convert` moves a trace between the JSONL and `.mcdt`
//! forms losslessly, and `repro trace replay FILE.mcdt --episode K`
//! re-simulates one catalogued episode from the nearest snapshot anchor
//! and verifies it byte-for-byte against the recording (DESIGN.md §14).
//! `repro profile <ids>` re-runs experiments with the span profiler and
//! distribution telemetry enabled and prints where the wall time went.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use mcd_bench::checkpoint::{write_file, CheckpointDir, CompletedRun};
use mcd_bench::error::RunError;
use mcd_bench::experiments;
use mcd_bench::parallel::par_try_map;
use mcd_bench::runner::{ControllerActivity, RunConfig, RunSet};
use mcd_bench::table::Table;
use mcd_bench::trace_analyze;
use mcd_sim::SimTelemetry;

fn usage() -> String {
    format!(
        "usage: repro <experiment>...|all|list [--ops N] [--quick] [--seed S] [--jobs N] \
         [--shard-ops N] [--shard-secs S] [--out DIR] [--bench-out FILE] [--trace-out FILE] \
         [--checkpoint DIR] [--resume] [--run-timeout SECS]\n\
         \x20      repro trace analyze FILE [--out FILE] [--episodes] [--worst N]\n\
         \x20      repro trace convert FILE --out FILE\n\
         \x20      repro trace replay FILE.mcdt --episode K\n\
         \x20      repro profile <experiment>... [--ops N] [--quick] [--seed S] [--jobs N]\n\
         experiments: {}\n\
         --shard-ops N splits each simulation into N-instruction segments at snapshot\n\
         boundaries (0 disables; reports are byte-identical either way);\n\
         --shard-secs S picks the shard length from a target segment wall time.\n\
         --trace-out writes JSON lines, or the binary flight-recorder format when the\n\
         file ends in .mcdt (anchors for `trace replay` need sharding, e.g. --shard-ops).",
        experiments::ALL.join(", ")
    )
}

/// Whether a path names the binary flight-recorder format.
fn is_mcdt(path: &std::path::Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some("mcdt")
}

/// Calibration for `--shard-secs`: simulated instructions per wall
/// second on a typical core (order-of-magnitude; sharding only needs the
/// segment length to land near the requested duration).
const SHARD_OPS_PER_SEC: f64 = 1_500_000.0;

/// Backend-domain display names, indexed like [`ControllerActivity`].
const DOMAINS: [&str; 3] = ControllerActivity::DOMAINS;

/// Renders the human-readable controller-activity summary (printed to
/// stdout only when `--bench-out` is given).
fn activity_table(a: &ControllerActivity) -> String {
    let mut t = Table::new([
        "domain",
        "relay arms",
        "fires",
        "resets",
        "steps up",
        "steps down",
        "mean reaction",
        "sync stalls",
        "slew time",
    ]);
    for (i, domain) in DOMAINS.iter().enumerate() {
        let reaction = match a.mean_reaction_time_ns(i) {
            Some(ns) => format!("{ns:.1} ns"),
            None => "-".to_string(),
        };
        t.row([
            domain.to_string(),
            a.relay_arms[i].to_string(),
            a.relay_fires[i].to_string(),
            a.relay_resets[i].to_string(),
            a.freq_steps_up[i].to_string(),
            a.freq_steps_down[i].to_string(),
            reaction,
            a.sync_enqueues[i].to_string(),
            format!("{:.1} us", a.transition_time_ps[i] as f64 / 1e6),
        ]);
    }
    format!(
        "Controller activity (aggregate over all simulations):\n\n{}",
        t.render()
    )
}

/// Flight-recorder cost figures for `--bench-out` (zeros when tracing
/// was off): how many events and episodes were captured, and what each
/// encoding costs in bytes and in wall time per event.
#[derive(Default)]
struct RecorderStats {
    events: u64,
    episodes: u64,
    jsonl_bytes: u64,
    mcdt_bytes: u64,
    jsonl_encode_ns_per_event: f64,
    mcdt_encode_ns_per_event: f64,
}

impl RecorderStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"events\": {}, \"episodes\": {}, \"jsonl_bytes\": {}, \
             \"mcdt_bytes\": {}, \"jsonl_encode_ns_per_event\": {:.1}, \
             \"mcdt_encode_ns_per_event\": {:.1}}}",
            self.events,
            self.episodes,
            self.jsonl_bytes,
            self.mcdt_bytes,
            self.jsonl_encode_ns_per_event,
            self.mcdt_encode_ns_per_event,
        )
    }
}

fn per_event_ns(elapsed: Duration, events: u64) -> f64 {
    if events == 0 {
        0.0
    } else {
        elapsed.as_nanos() as f64 / events as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_report(
    jobs: usize,
    total_wall_s: f64,
    stats: &mcd_bench::runner::RunStats,
    compute_s: f64,
    records: &[(&'static str, CompletedRun)],
    activity: &ControllerActivity,
    telemetry: Option<&SimTelemetry>,
    recorder: &RecorderStats,
) -> String {
    // Totals come from the RunSet's global counters rather than summing
    // the per-experiment records: under shared-pool attribution the
    // memoized baseline computes are charged globally only (whichever
    // experiment happens to trigger them is a scheduling accident), and
    // under --resume the replayed records describe a *previous*
    // invocation's work. The totals therefore count exactly what this
    // invocation simulated.
    let mips = if compute_s > 0.0 {
        stats.instructions as f64 / compute_s / 1e6
    } else {
        0.0
    };
    let body: Vec<String> = records
        .iter()
        .map(|(id, r)| format!("    {}", r.record_json(id)))
        .collect();
    let telemetry_block = match telemetry {
        Some(tel) => format!("  \"telemetry\": {},\n", telemetry_json(tel)),
        None => String::new(),
    };
    format!(
        "{{\n  \"jobs\": {jobs},\n  \"total_wall_s\": {total_wall_s:.3},\n  \
         \"total_runs\": {},\n  \"total_instructions\": {},\n  \
         \"total_baseline_requests\": {},\n  \"aggregate_simulated_mips\": {mips:.2},\n  \
         \"total_events_processed\": {},\n  \"total_cycles_skipped\": {},\n  \
         \"controller_activity\": {},\n{telemetry_block}  \
         \"trace_recorder\": {},\n  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        stats.runs,
        stats.instructions,
        stats.baseline_requests,
        stats.events_processed,
        stats.cycles_skipped,
        activity.to_json(),
        recorder.to_json(),
        body.join(",\n")
    )
}

/// Renders the per-domain reaction-time and occupancy distributions
/// (printed alongside the activity table when telemetry is enabled).
fn telemetry_table(tel: &SimTelemetry) -> String {
    let mut t = Table::new([
        "domain",
        "reactions",
        "p50",
        "p90",
        "p99",
        "max",
        "occ samples",
        "occ p99",
        "occ max",
    ]);
    for (i, domain) in DOMAINS.iter().enumerate() {
        let r = tel.reaction_ps[i].snapshot();
        let o = tel.occupancy[i].snapshot();
        let ns = |ps: u64| format!("{:.1} ns", ps as f64 / 1e3);
        t.row([
            domain.to_string(),
            r.count().to_string(),
            ns(r.p50()),
            ns(r.p90()),
            ns(r.p99()),
            ns(r.max()),
            o.count().to_string(),
            o.p99().to_string(),
            o.max().to_string(),
        ]);
    }
    format!(
        "Reaction-time and queue-occupancy distributions (aggregate):\n\n{}",
        t.render()
    )
}

/// JSON block of per-domain distribution summaries for `--bench-out`.
fn telemetry_json(tel: &SimTelemetry) -> String {
    let domains: Vec<String> = DOMAINS
        .iter()
        .enumerate()
        .map(|(i, domain)| {
            let r = tel.reaction_ps[i].snapshot();
            let o = tel.occupancy[i].snapshot();
            format!(
                "{{\"domain\": \"{domain}\", \"reactions\": {}, \
                 \"reaction_p50_ns\": {:.1}, \"reaction_p99_ns\": {:.1}, \
                 \"reaction_max_ns\": {:.1}, \"occupancy_samples\": {}, \
                 \"occupancy_p99\": {}, \"occupancy_max\": {}}}",
                r.count(),
                r.p50() as f64 / 1e3,
                r.p99() as f64 / 1e3,
                r.max() as f64 / 1e3,
                o.count(),
                o.p99(),
                o.max()
            )
        })
        .collect();
    format!("[{}]", domains.join(", "))
}

/// Renders the end-of-sweep failure table.
fn failure_table(failures: &[(&'static str, RunError)], total: usize) -> String {
    let mut t = Table::new(["experiment", "class", "error"]);
    for (id, e) in failures {
        t.row([id.to_string(), e.kind().to_string(), e.to_string()]);
    }
    format!(
        "FAILURES: {} of {total} experiments failed\n\n{}",
        failures.len(),
        t.render()
    )
}

/// `repro trace <analyze|convert|replay>`: offline consumers of
/// `--trace-out` files, in either the JSONL or binary `.mcdt` form.
fn trace_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("analyze") => trace_analyze_cmd(&args[1..]),
        Some("convert") => trace_convert_cmd(&args[1..]),
        Some("replay") => trace_replay_cmd(&args[1..]),
        _ => {
            eprintln!(
                "trace subcommands: analyze FILE [--out FILE] [--episodes] [--worst N] | \
                 convert FILE --out FILE | replay FILE.mcdt --episode K\n{}",
                usage()
            );
            ExitCode::FAILURE
        }
    }
}

/// `repro trace analyze FILE [--out FILE] [--episodes] [--worst N]`:
/// offline analysis of a trace in either format. The report is a pure
/// function of the trace bytes, so it can be golden-gated. `--episodes`
/// switches to the episode-catalog view; on a `.mcdt` file it reads only
/// the trailing seek index, never the event stream.
fn trace_analyze_cmd(args: &[String]) -> ExitCode {
    let Some(file) = args.first() else {
        eprintln!("trace analyze needs a FILE\n{}", usage());
        return ExitCode::FAILURE;
    };
    let mut out: Option<std::path::PathBuf> = None;
    let mut episodes = false;
    let mut worst = 20usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out = Some(std::path::PathBuf::from(path));
            }
            "--episodes" => episodes = true,
            "--worst" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--worst needs a count\n{}", usage());
                    return ExitCode::FAILURE;
                };
                episodes = true;
                worst = n;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let path = std::path::Path::new(file);
    let report = if is_mcdt(path) {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if episodes {
            // O(index): decode only the trailing index block.
            match mcd_trace::read_index(&bytes) {
                Ok(index) => {
                    let runs: Vec<(String, Vec<mcd_trace::Episode>)> = index
                        .runs
                        .iter()
                        .map(|r| (r.label.clone(), r.episodes.clone()))
                        .collect();
                    trace_analyze::episodes_report(&runs, worst)
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            let decoded = match mcd_trace::read_mcdt(&bytes) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let jsonl = trace_analyze::render_recordings(&decoded.runs);
            match trace_analyze::analyze(&jsonl) {
                Ok(analysis) => analysis.report(),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        let jsonl = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if episodes {
            match mcd_trace::parse_jsonl(&jsonl) {
                Ok(runs) => {
                    let catalogs: Vec<(String, Vec<mcd_trace::Episode>)> = runs
                        .iter()
                        .map(|r| (r.label.clone(), mcd_trace::catalog_episodes(&r.events)))
                        .collect();
                    trace_analyze::episodes_report(&catalogs, worst)
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match trace_analyze::analyze(&jsonl) {
                Ok(analysis) => analysis.report(),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    print!("{report}");
    if let Some(path) = &out {
        if let Err(e) = write_file(path, report.as_bytes()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `repro trace convert FILE --out FILE`: lossless conversion between
/// the JSONL and `.mcdt` trace forms — the direction is inferred from
/// the extensions. `.mcdt -> .jsonl` renders exactly the bytes a direct
/// `--trace-out FILE.jsonl` run would have written; the reverse embeds
/// the events in fresh frames (JSONL carries no anchors or replay
/// specs, so a converted file analyzes identically but cannot replay).
fn trace_convert_cmd(args: &[String]) -> ExitCode {
    let Some(file) = args.first() else {
        eprintln!("trace convert needs a FILE\n{}", usage());
        return ExitCode::FAILURE;
    };
    let mut out: Option<std::path::PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out = Some(std::path::PathBuf::from(path));
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(out) = out else {
        eprintln!("trace convert needs --out FILE\n{}", usage());
        return ExitCode::FAILURE;
    };
    let input = std::path::Path::new(file);
    let encoded: Vec<u8> = match (is_mcdt(input), is_mcdt(&out)) {
        (true, false) => {
            let bytes = match std::fs::read(input) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match mcd_trace::read_mcdt(&bytes) {
                Ok(decoded) => trace_analyze::render_recordings(&decoded.runs).into_bytes(),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (false, true) => {
            let jsonl = match std::fs::read_to_string(input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match mcd_trace::parse_jsonl(&jsonl) {
                Ok(recordings) => mcd_trace::write_mcdt(&recordings),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            eprintln!(
                "trace convert needs exactly one .mcdt side (got {} -> {})\n{}",
                file,
                out.display(),
                usage()
            );
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_file(&out, &encoded) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} bytes to {}", encoded.len(), out.display());
    ExitCode::SUCCESS
}

/// `repro trace replay FILE.mcdt --episode K`: restores the nearest
/// anchor snapshot and re-simulates just the segment around catalogued
/// episode `K`, verifying the replayed events against the original
/// recording byte for byte. Exits nonzero on divergence.
fn trace_replay_cmd(args: &[String]) -> ExitCode {
    let Some(file) = args.first() else {
        eprintln!("trace replay needs a FILE.mcdt\n{}", usage());
        return ExitCode::FAILURE;
    };
    let mut episode: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--episode" => {
                i += 1;
                let Some(k) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--episode needs an ordinal\n{}", usage());
                    return ExitCode::FAILURE;
                };
                episode = Some(k);
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(k) = episode else {
        eprintln!(
            "trace replay needs --episode K (see trace analyze --episodes)\n{}",
            usage()
        );
        return ExitCode::FAILURE;
    };
    let path = std::path::Path::new(file);
    if !is_mcdt(path) {
        eprintln!("trace replay needs a .mcdt recording (JSONL carries no anchors)");
        return ExitCode::FAILURE;
    }
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mcd_bench::replay::replay_episode(&bytes, k) {
        Ok(outcome) => {
            print!("{}", outcome.report());
            if outcome.byte_identical {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro profile <ids>`: re-runs experiments with the span profiler and
/// distribution telemetry enabled and prints a per-experiment phase
/// breakdown. Wall readings vary run to run, so this output is never
/// golden-gated.
fn profile_cmd(args: &[String]) -> ExitCode {
    let mut ids: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        let id = match args[i].as_str() {
            "headline" => "fig9",
            other => other,
        };
        if id == "all" {
            ids.extend(experiments::ALL);
        } else if let Some(&known) = experiments::ALL.iter().find(|&&e| e == id) {
            if !ids.contains(&known) {
                ids.push(known);
            }
        } else {
            eprintln!("unknown experiment {id}\n{}", usage());
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("no experiments named\n{}", usage());
        return ExitCode::FAILURE;
    }
    let mut cfg = RunConfig::full();
    let mut jobs = mcd_bench::parallel::default_jobs();
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let rs = RunSet::new(jobs).with_telemetry().with_profiling();
    for (n, id) in ids.iter().enumerate() {
        let before = rs.profiler().snapshot();
        let wall_before = rs.wall_snapshot();
        let start = Instant::now();
        if let Err(e) = experiments::run_on(&rs, id, &cfg) {
            eprintln!("{id}: {e}");
            return ExitCode::FAILURE;
        }
        let wall_s = start.elapsed().as_secs_f64();
        let phases = rs.profiler().snapshot().diff(&before);
        let wall = rs.wall_snapshot().diff(&wall_before);
        let mut t = Table::new(["phase", "calls", "wall", "share"]);
        for p in &phases.phases {
            // Share of the experiment's wall clock; nested paths (e.g.
            // baseline/simulate) also count toward their parents, so
            // shares need not sum to 100%.
            let share = p.seconds() * 100.0 / wall_s.max(1e-9);
            t.row([
                p.path.clone(),
                p.calls.to_string(),
                format!("{:.3} s", p.seconds()),
                format!("{share:.1}%"),
            ]);
        }
        if n > 0 {
            println!();
        }
        println!(
            "{id}: {wall_s:.3} s wall, {} simulations (per-run p50 {:.3} s, p99 {:.3} s)\n\n{}",
            wall.count(),
            wall.p50() as f64 / 1e6,
            wall.p99() as f64 / 1e6,
            t.render()
        );
    }
    if let Some(tel) = rs.telemetry() {
        println!("\n{}", telemetry_table(tel));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if args[0] == "list" {
        for e in experiments::ALL {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "trace" {
        return trace_cmd(&args[1..]);
    }
    if args[0] == "profile" {
        return profile_cmd(&args[1..]);
    }

    // Leading non-flag arguments are experiment ids ("headline" is a
    // friendlier alias for the reconstructed Figure 9).
    let mut ids: Vec<&'static str> = Vec::new();
    let mut i = 0;
    while i < args.len() && !args[i].starts_with("--") {
        let id = match args[i].as_str() {
            "headline" => "fig9",
            other => other,
        };
        if id == "all" {
            ids.extend(experiments::ALL);
        } else if let Some(&known) = experiments::ALL.iter().find(|&&e| e == id) {
            if !ids.contains(&known) {
                ids.push(known);
            }
        } else {
            eprintln!("unknown experiment {id}\n{}", usage());
            return ExitCode::FAILURE;
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("no experiments named\n{}", usage());
        return ExitCode::FAILURE;
    }

    let mut cfg = RunConfig::full();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut run_timeout: Option<Duration> = None;
    let mut jobs = mcd_bench::parallel::default_jobs();
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--resume" => resume = true,
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--bench-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--bench-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                bench_out = Some(std::path::PathBuf::from(file));
            }
            "--trace-out" => {
                i += 1;
                let Some(file) = args.get(i) else {
                    eprintln!("--trace-out needs a file\n{}", usage());
                    return ExitCode::FAILURE;
                };
                trace_out = Some(std::path::PathBuf::from(file));
            }
            "--checkpoint" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--checkpoint needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                checkpoint_dir = Some(std::path::PathBuf::from(dir));
            }
            "--run-timeout" => {
                i += 1;
                let Some(secs) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--run-timeout needs seconds\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if !(secs > 0.0 && secs.is_finite()) {
                    eprintln!("--run-timeout needs positive seconds\n{}", usage());
                    return ExitCode::FAILURE;
                }
                run_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--jobs" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            "--shard-ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--shard-ops needs an integer (0 disables)\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_shard_ops(n);
            }
            "--shard-secs" => {
                i += 1;
                let Some(secs) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--shard-secs needs seconds\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if !(secs > 0.0 && secs.is_finite()) {
                    eprintln!("--shard-secs needs positive seconds\n{}", usage());
                    return ExitCode::FAILURE;
                }
                cfg = cfg.with_shard_ops((secs * SHARD_OPS_PER_SEC).max(1.0) as u64);
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume needs --checkpoint DIR\n{}", usage());
        return ExitCode::FAILURE;
    }

    let checkpoint = match &checkpoint_dir {
        Some(dir) => match CheckpointDir::open(dir, &CheckpointDir::fingerprint(&cfg)) {
            Ok(ck) => Some(ck),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Distribution telemetry rides along whenever a machine-readable
    // benchmark record was asked for; the default path keeps NullSink.
    let rs = RunSet::init_global(jobs, trace_out.is_some(), bench_out.is_some(), false);
    let all_start = Instant::now();

    // Replay checkpointed entries, then run what is left. One ordered
    // outcome slot per experiment either way.
    let mut outcomes: Vec<Option<Result<CompletedRun, RunError>>> = Vec::new();
    outcomes.resize_with(ids.len(), || None);
    if resume {
        let ck = checkpoint.as_ref().expect("checked above");
        for (slot, id) in outcomes.iter_mut().zip(&ids) {
            if let Some(run) = ck.load(id) {
                *slot = Some(Ok(run));
            }
        }
    }
    let pending: Vec<(usize, &'static str)> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(n, _)| (n, ids[n]))
        .collect();

    // Experiments submit their runs to one process-wide work-stealing
    // pool (capped at --jobs workers), so the sweep drives several
    // experiments concurrently without oversubscribing: an experiment's
    // long tail run no longer strands the other cores. Per-experiment
    // numbers come from tag attribution, not counter deltas, so they
    // stay honest while experiments interleave. The isolation lives in
    // par_try_map: panic capture, the optional per-run wall-clock
    // budget, and one retry for transient failures (reset_tag keeps a
    // retried attempt from double-charging its first try).
    let sweep_cfg = cfg.clone();
    let sweep_ck = checkpoint.clone();
    let drivers = jobs.min(pending.len()).max(1);
    let results = par_try_map(drivers, pending.clone(), run_timeout, move |(_, id)| {
        rs.reset_tag(id);
        let start = Instant::now();
        let report = rs.with_tag(id, || experiments::run_on(rs, id, &sweep_cfg))?;
        let driver_wall_s = start.elapsed().as_secs_f64();
        let kind = experiments::kind(id).expect("ids are validated against ALL");
        let tag = rs.tag_stats(id);
        // Simulation experiments report the machine time their runs
        // actually consumed (the driver's elapsed clock would include
        // other experiments' runs interleaving on the shared pool);
        // analysis experiments do no pool work, so the driver clock is
        // the honest figure.
        let wall_s = if kind == experiments::Kind::Simulation && tag.compute_us > 0 {
            tag.wall_s()
        } else {
            driver_wall_s
        };
        let run = CompletedRun {
            report,
            kind: kind.label().to_string(),
            wall_s,
            runs: tag.runs,
            instructions: tag.instructions,
            baseline_requests: tag.baseline_requests,
            events_processed: tag.events_processed,
            cycles_skipped: tag.cycles_skipped,
            run_wall_p50_s: tag.run_wall_p50_s(),
            run_wall_p99_s: tag.run_wall_p99_s(),
        };
        if let Some(ck) = &sweep_ck {
            ck.store(id, &run)?;
        }
        Ok(run)
    });
    for ((n, _), result) in pending.into_iter().zip(results) {
        outcomes[n] = Some(result);
    }

    // Reports in request order; failures collected for the table.
    let mut records: Vec<(&'static str, CompletedRun)> = Vec::new();
    let mut failures: Vec<(&'static str, RunError)> = Vec::new();
    let mut exit = ExitCode::SUCCESS;
    for (id, outcome) in ids.iter().zip(outcomes) {
        match outcome.expect("every slot is replayed or run") {
            Ok(run) => {
                if !records.is_empty() {
                    println!("\n{}\n", "=".repeat(78));
                }
                println!("{}", run.report);
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.txt"));
                    if let Err(e) = write_file(&path, run.report.as_bytes()) {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
                records.push((id, run));
            }
            Err(e) => failures.push((id, e)),
        }
    }
    // Drain the flight recorder exactly once; the trace file and the
    // bench-out trace_recorder block both come from this one drain.
    let recordings = rs.drain_recordings();
    let mut recorder = RecorderStats::default();
    if let Some(recs) = &recordings {
        let want_mcdt = trace_out.as_deref().map(is_mcdt).unwrap_or(false);
        let need_jsonl = (trace_out.is_some() && !want_mcdt) || bench_out.is_some();
        let need_mcdt = want_mcdt || bench_out.is_some();
        recorder.events = recs.iter().map(|r| r.events.len() as u64).sum();
        let mut jsonl: Option<String> = None;
        let mut mcdt: Option<Vec<u8>> = None;
        if need_jsonl {
            let start = Instant::now();
            let rendered = trace_analyze::render_recordings(recs);
            recorder.jsonl_encode_ns_per_event = per_event_ns(start.elapsed(), recorder.events);
            recorder.jsonl_bytes = rendered.len() as u64;
            jsonl = Some(rendered);
        }
        if need_mcdt {
            let start = Instant::now();
            let encoded = mcd_trace::write_mcdt(recs);
            recorder.mcdt_encode_ns_per_event = per_event_ns(start.elapsed(), recorder.events);
            recorder.mcdt_bytes = encoded.len() as u64;
            recorder.episodes = mcd_trace::read_index(&encoded)
                .map(|ix| ix.episode_count() as u64)
                .unwrap_or(0);
            mcdt = Some(encoded);
        }
        if let Some(path) = &trace_out {
            let bytes = if want_mcdt {
                mcdt.expect("encoded above")
            } else {
                jsonl.expect("rendered above").into_bytes()
            };
            if let Err(e) = write_file(path, &bytes) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &bench_out {
        let activity = rs.activity();
        println!("\n{}\n", "=".repeat(78));
        println!("{}", activity_table(&activity));
        if let Some(tel) = rs.telemetry() {
            println!("\n{}", telemetry_table(tel));
        }
        let json = bench_report(
            rs.jobs(),
            all_start.elapsed().as_secs_f64(),
            &rs.stats(),
            rs.wall_snapshot().sum() as f64 / 1e6,
            &records,
            &activity,
            rs.telemetry(),
            &recorder,
        );
        if let Err(e) = write_file(path, json.as_bytes()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if !failures.is_empty() {
        println!("\n{}\n", "=".repeat(78));
        println!("{}", failure_table(&failures, ids.len()));
        if checkpoint.is_some() && !resume {
            println!("completed experiments are checkpointed; re-run with --resume to retry only the failures");
        }
        exit = ExitCode::FAILURE;
    }
    exit
}
