//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--ops N] [--quick] [--seed S] [--out DIR]
//! repro all [--ops N] [--out DIR]
//! repro list
//! ```
//!
//! With `--out DIR`, each experiment's report is also written to
//! `DIR/<experiment>.txt`.

use std::process::ExitCode;

use mcd_bench::experiments;
use mcd_bench::runner::RunConfig;

fn usage() -> String {
    format!(
        "usage: repro <experiment|all|list> [--ops N] [--quick] [--seed S] [--out DIR]\n\
         experiments: {}",
        experiments::ALL.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let id = args[0].as_str();
    if id == "list" {
        for e in experiments::ALL {
            println!("{e}");
        }
        return ExitCode::SUCCESS;
    }

    let mut cfg = RunConfig::full();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--ops" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--ops needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg = cfg.with_ops(n);
            }
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = s;
            }
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let ids: Vec<&str> = if id == "all" {
        experiments::ALL.to_vec()
    } else if experiments::ALL.contains(&id) {
        vec![id]
    } else {
        eprintln!("unknown experiment {id}\n{}", usage());
        return ExitCode::FAILURE;
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for (n, id) in ids.iter().enumerate() {
        if n > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        let report = experiments::run(id, &cfg);
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, &report) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
