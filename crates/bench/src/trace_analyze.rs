//! Offline trace analysis: rendering and consuming `--trace-out` JSONL.
//!
//! `repro --trace-out FILE` writes one controller/machine event per line
//! (see [`render_traces`]); `repro trace analyze FILE` reads those lines
//! back and reconstructs what no single counter shows — deviation
//! episodes, the *distribution* of reaction times (the paper's central
//! quantity, HPCA 2005 §4–5), relay-reset reasons, queue-occupancy
//! distributions, and an ASCII per-domain timeline of the busiest run.
//!
//! The report is deterministic: it is a pure function of the event
//! lines, which the harness emits sorted by run label whatever the
//! worker count, so `repro ... --jobs 1/2/8 --trace-out` feed
//! byte-identical analyses. Reaction times are reconstructed with
//! exactly the engine's onset rule (`observe_ctrl_event` /
//! `note_freq_step` in `mcd-sim`), so the analyzer's per-domain mean
//! equals the always-on counters' `mean_reaction_ns` to the picosecond.

use std::collections::BTreeMap;

use mcd_sim::TraceEvent;
use mcd_telemetry::{Histogram, HistogramSnapshot};
use mcd_trace::Episode;

use crate::error::RunError;
use crate::runner::ControllerActivity;
use crate::table::Table;

/// Escapes a run label for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders collected event traces as JSON lines: one event per line,
/// each tagged with the run label that produced it.
pub fn render_traces(traces: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::new();
    for (label, events) in traces {
        render_run(&mut out, label, events);
    }
    out
}

/// Renders drained [`mcd_trace::RunRecording`]s byte-identically to what
/// [`render_traces`] produces for their (label, events) pairs — the
/// recorder's anchors and replay specs have no JSONL representation.
pub fn render_recordings(recordings: &[mcd_trace::RunRecording]) -> String {
    let mut out = String::new();
    for r in recordings {
        render_run(&mut out, &r.label, &r.events);
    }
    out
}

fn render_run(out: &mut String, label: &str, events: &[TraceEvent]) {
    let run = json_escape(label);
    for ev in events {
        let body = ev.to_json();
        // Splice the run tag into the event object: {"run":"...",...}.
        out.push_str(&format!("{{\"run\": \"{run}\", {}\n", &body[1..]));
    }
}

/// The backend domains in report order, as serialized in events.
const DOMAINS: [&str; 3] = ControllerActivity::DOMAINS;

fn domain_index(name: &str) -> Option<usize> {
    DOMAINS.iter().position(|&d| d == name)
}

fn signal_index(name: &str) -> Option<usize> {
    match name {
        "occupancy" => Some(0),
        "delta" => Some(1),
        _ => None,
    }
}

/// One parsed trace line — only the fields the analysis needs.
struct Line {
    run: String,
    domain: usize,
    t_ps: u64,
    kind: Kind,
}

enum Kind {
    WindowEnter { signal: usize },
    WindowExit { signal: usize },
    RelayArm,
    RelayFire,
    RelayReset { why: String },
    FreqStep { up: bool },
    QueueHistogram { counts: Vec<u64> },
}

/// Extracts the `"counts":[...]` array (the one non-flat field in the
/// trace schema).
fn counts_field(json: &str) -> Option<Vec<u64>> {
    let start = json.find("\"counts\":")? + "\"counts\":".len();
    let rest = json[start..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

fn parse_line(line: &str, line_no: usize) -> Result<Line, RunError> {
    use crate::checkpoint::{str_field, u64_field};
    let err = |what: &str| {
        RunError::Config(format!(
            "trace line {line_no}: {what}: {}",
            line.chars().take(120).collect::<String>()
        ))
    };
    let run = str_field(line, "run").ok_or_else(|| err("no run label"))?;
    let domain = str_field(line, "domain")
        .and_then(|d| domain_index(&d))
        .ok_or_else(|| err("no backend domain"))?;
    let t_ps = u64_field(line, "t_ps").ok_or_else(|| err("no t_ps"))?;
    let kind = str_field(line, "kind").ok_or_else(|| err("no kind"))?;
    let signal = || {
        str_field(line, "signal")
            .and_then(|s| signal_index(&s))
            .ok_or_else(|| err("no signal"))
    };
    let kind = match kind.as_str() {
        "window_enter" => Kind::WindowEnter { signal: signal()? },
        "window_exit" => Kind::WindowExit { signal: signal()? },
        "relay_arm" => Kind::RelayArm,
        "relay_fire" => Kind::RelayFire,
        "relay_reset" => Kind::RelayReset {
            why: str_field(line, "why").ok_or_else(|| err("no reset reason"))?,
        },
        "freq_step" => Kind::FreqStep {
            up: str_field(line, "dir").ok_or_else(|| err("no step direction"))? == "up",
        },
        "queue_histogram" => Kind::QueueHistogram {
            counts: counts_field(line).ok_or_else(|| err("bad counts array"))?,
        },
        other => return Err(err(&format!("unknown event kind {other:?}"))),
    };
    Ok(Line {
        run,
        domain,
        t_ps,
        kind,
    })
}

/// Per-domain aggregates across every run in the trace.
#[derive(Default)]
struct DomainAgg {
    reaction: Histogram,
    reaction_sum_ps: u64,
    arms: u64,
    fires: u64,
    resets: BTreeMap<String, u64>,
    steps_up: u64,
    steps_down: u64,
    episodes_reacted: u64,
    episodes_abandoned: u64,
    occupancy: Histogram,
}

/// Everything the analyzer reconstructs from one trace file. Produced
/// by [`analyze`]; render with [`TraceAnalysis::report`].
#[derive(Debug)]
pub struct TraceAnalysis {
    events: u64,
    runs: u64,
    domains: [DomainAggOut; 3],
    timeline: Option<Timeline>,
    /// Set when the file's unterminated final line was dropped as a
    /// mid-write truncation; rendered as a partial-analysis note.
    truncation: Option<String>,
}

/// Public per-domain view (snapshots instead of live histograms).
#[derive(Debug)]
struct DomainAggOut {
    reaction: HistogramSnapshot,
    reaction_sum_ps: u64,
    arms: u64,
    fires: u64,
    resets: BTreeMap<String, u64>,
    steps_up: u64,
    steps_down: u64,
    episodes_reacted: u64,
    episodes_abandoned: u64,
    occupancy: HistogramSnapshot,
}

#[derive(Debug)]
struct Timeline {
    run: String,
    span_ps: u64,
    rows: [String; 3],
}

/// Width of the ASCII timeline in bins.
const TIMELINE_BINS: usize = 64;

/// Rank of a timeline glyph; higher wins when events share a bin.
fn glyph_priority(c: char) -> u8 {
    match c {
        'S' => 5,
        'F' => 4,
        'A' => 3,
        '^' => 2,
        'v' => 1,
        _ => 0,
    }
}

impl TraceAnalysis {
    /// Mean reaction time for backend domain `idx` in nanoseconds, or
    /// `None` if the trace shows no completed reaction — defined
    /// exactly like [`ControllerActivity::mean_reaction_time_ns`].
    pub fn mean_reaction_time_ns(&self, idx: usize) -> Option<f64> {
        let d = &self.domains[idx];
        if d.reaction.count() == 0 {
            None
        } else {
            Some(d.reaction_sum_ps as f64 / d.reaction.count() as f64 / 1000.0)
        }
    }

    /// Renders the deterministic report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("Trace analysis\n==============\n\n");
        out.push_str(&format!(
            "{} events across {} runs\n\n",
            self.events, self.runs
        ));
        if let Some(note) = &self.truncation {
            out.push_str(&format!("NOTE: partial analysis — {note}\n\n"));
        }

        let ns = |ps: u64| format!("{:.1} ns", ps as f64 / 1000.0);
        let mut t = Table::new(["domain", "reactions", "mean", "p50", "p99", "max"]);
        for (i, name) in DOMAINS.iter().enumerate() {
            let d = &self.domains[i];
            let (mean, p50, p99, max) = if d.reaction.count() == 0 {
                ("-".into(), "-".into(), "-".into(), "-".to_string())
            } else {
                (
                    format!("{:.1} ns", self.mean_reaction_time_ns(i).unwrap_or(0.0)),
                    ns(d.reaction.p50()),
                    ns(d.reaction.p99()),
                    ns(d.reaction.max()),
                )
            };
            t.row([
                name.to_string(),
                d.reaction.count().to_string(),
                mean,
                p50,
                p99,
                max,
            ]);
        }
        out.push_str("Reaction time (deviation onset -> frequency step):\n\n");
        out.push_str(&t.render());

        let mut reasons: Vec<String> = Vec::new();
        for d in &self.domains {
            for why in d.resets.keys() {
                if !reasons.contains(why) {
                    reasons.push(why.clone());
                }
            }
        }
        reasons.sort();
        let mut headers = vec![
            "domain".to_string(),
            "arms".to_string(),
            "fires".to_string(),
            "resets".to_string(),
        ];
        headers.extend(reasons.iter().cloned());
        let mut t = Table::new(headers);
        for (i, name) in DOMAINS.iter().enumerate() {
            let d = &self.domains[i];
            let mut row = vec![
                name.to_string(),
                d.arms.to_string(),
                d.fires.to_string(),
                d.resets.values().sum::<u64>().to_string(),
            ];
            for why in &reasons {
                row.push(d.resets.get(why).copied().unwrap_or(0).to_string());
            }
            t.row(row);
        }
        out.push_str("\nRelay activity (resets broken down by reason):\n\n");
        out.push_str(&t.render());

        let mut t = Table::new([
            "domain",
            "episodes",
            "reacted",
            "abandoned",
            "steps up",
            "steps down",
        ]);
        for (i, name) in DOMAINS.iter().enumerate() {
            let d = &self.domains[i];
            t.row([
                name.to_string(),
                (d.episodes_reacted + d.episodes_abandoned).to_string(),
                d.episodes_reacted.to_string(),
                d.episodes_abandoned.to_string(),
                d.steps_up.to_string(),
                d.steps_down.to_string(),
            ]);
        }
        out.push_str("\nDeviation episodes (onset -> step, or abandoned back inside):\n\n");
        out.push_str(&t.render());

        let mut t = Table::new(["domain", "samples", "p50", "p99", "max"]);
        for (i, name) in DOMAINS.iter().enumerate() {
            let d = &self.domains[i];
            let (p50, p99, max) = if d.occupancy.count() == 0 {
                ("-".into(), "-".into(), "-".to_string())
            } else {
                (
                    d.occupancy.p50().to_string(),
                    d.occupancy.p99().to_string(),
                    d.occupancy.max().to_string(),
                )
            };
            t.row([
                name.to_string(),
                d.occupancy.count().to_string(),
                p50,
                p99,
                max,
            ]);
        }
        out.push_str("\nQueue occupancy (entries, per controller sample):\n\n");
        out.push_str(&t.render());

        if let Some(tl) = &self.timeline {
            out.push_str(&format!(
                "\nTimeline of the busiest run ({} bins over {:.1} us):\n  {}\n  S=freq step  F=relay fire  A=relay arm  ^=window enter  v=window exit\n\n",
                TIMELINE_BINS,
                tl.span_ps as f64 / 1e6,
                tl.run,
            ));
            for (i, name) in DOMAINS.iter().enumerate() {
                out.push_str(&format!("  {:<4}|{}|\n", name, tl.rows[i]));
            }
        }
        out
    }
}

/// Analyzes `--trace-out` JSON lines. Blank lines are skipped; any
/// malformed *complete* line is a typed error naming its line number.
///
/// Two degraded inputs get distinct treatment rather than a silent
/// mis-summary: a file with no events at all is a typed error, and a
/// file whose final line is both unterminated (no trailing newline) and
/// unparseable — the signature of a writer killed mid-line — drops that
/// line and flags the report as a partial analysis.
pub fn analyze(jsonl: &str) -> Result<TraceAnalysis, RunError> {
    if jsonl.chars().all(char::is_whitespace) {
        return Err(RunError::Config(
            "trace file is empty: no events to analyze (was the run given --trace-out?)".into(),
        ));
    }
    // Group lines by run label, preserving each run's in-file (time)
    // order. The BTreeMap makes the analysis independent of run order
    // in the file; within a run the events come from one simulation and
    // are already time-ordered.
    let terminated = jsonl.ends_with('\n');
    let total_lines = jsonl.lines().count();
    let mut by_run: BTreeMap<String, Vec<Line>> = BTreeMap::new();
    let mut events = 0u64;
    let mut truncation = None;
    for (idx, raw) in jsonl.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        match parse_line(raw, idx + 1) {
            Ok(line) => {
                events += 1;
                by_run.entry(line.run.clone()).or_default().push(line);
            }
            Err(e) => {
                if idx + 1 == total_lines && !terminated {
                    truncation = Some(format!(
                        "dropped unterminated final line {} ({} bytes, no trailing \
                         newline); the trace was likely cut off mid-write",
                        idx + 1,
                        raw.len(),
                    ));
                } else {
                    return Err(e);
                }
            }
        }
    }
    if events == 0 {
        return Err(RunError::Config(
            "trace file contains no parseable events".into(),
        ));
    }

    let mut aggs: [DomainAgg; 3] = Default::default();
    let mut busiest: Option<(usize, &String)> = None;
    for (run, lines) in &by_run {
        // More events wins; ties go to the lexicographically smaller
        // label (BTreeMap iteration order makes `>` do exactly that).
        if busiest.map(|(n, _)| lines.len() > n).unwrap_or(true) {
            busiest = Some((lines.len(), run));
        }
        // Replay the engine's onset bookkeeping per domain.
        let mut onsets: [[Option<u64>; 2]; 3] = [[None; 2]; 3];
        let mut seen_occupancy: [Vec<u64>; 3] = Default::default();
        for line in lines {
            let bi = line.domain;
            let agg = &mut aggs[bi];
            match &line.kind {
                Kind::WindowEnter { signal } => {
                    let slot = &mut onsets[bi][*signal];
                    if slot.is_none() {
                        *slot = Some(line.t_ps);
                    }
                }
                Kind::WindowExit { signal } => {
                    let had_onset = onsets[bi].iter().any(Option::is_some);
                    onsets[bi][*signal] = None;
                    if had_onset && onsets[bi].iter().all(Option::is_none) {
                        agg.episodes_abandoned += 1;
                    }
                }
                Kind::RelayArm => agg.arms += 1,
                Kind::RelayFire => agg.fires += 1,
                Kind::RelayReset { why } => {
                    *agg.resets.entry(why.clone()).or_insert(0) += 1;
                }
                Kind::FreqStep { up } => {
                    if *up {
                        agg.steps_up += 1;
                    } else {
                        agg.steps_down += 1;
                    }
                    let onset = match (onsets[bi][0], onsets[bi][1]) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    if let Some(on) = onset {
                        let dt = line.t_ps - on;
                        agg.reaction.record(dt);
                        agg.reaction_sum_ps += dt;
                        agg.episodes_reacted += 1;
                        onsets[bi] = [None, None];
                    }
                }
                Kind::QueueHistogram { counts } => {
                    let seen = &mut seen_occupancy[bi];
                    seen.resize(counts.len().max(seen.len()), 0);
                    for (occ, (&now, prev)) in counts.iter().zip(seen.iter_mut()).enumerate() {
                        let delta = now.saturating_sub(*prev);
                        if delta > 0 {
                            agg.occupancy.record_n(occ as u64, delta);
                        }
                        *prev = now;
                    }
                }
            }
        }
    }

    let timeline = busiest.map(|(_, run)| {
        let lines = &by_run[run];
        let span_ps = lines.iter().map(|l| l.t_ps).max().unwrap_or(0);
        let mut rows: [Vec<char>; 3] = std::array::from_fn(|_| vec!['.'; TIMELINE_BINS]);
        for line in lines {
            let glyph = match &line.kind {
                Kind::FreqStep { .. } => 'S',
                Kind::RelayFire => 'F',
                Kind::RelayArm => 'A',
                Kind::WindowEnter { .. } => '^',
                Kind::WindowExit { .. } => 'v',
                _ => continue,
            };
            let bin = if span_ps == 0 {
                0
            } else {
                ((line.t_ps as u128 * (TIMELINE_BINS as u128 - 1)) / span_ps as u128) as usize
            };
            let slot = &mut rows[line.domain][bin];
            if glyph_priority(glyph) > glyph_priority(*slot) {
                *slot = glyph;
            }
        }
        Timeline {
            run: run.clone(),
            span_ps,
            rows: rows.map(|r| r.into_iter().collect()),
        }
    });

    Ok(TraceAnalysis {
        events,
        truncation,
        runs: by_run.len() as u64,
        domains: aggs.map(|a| DomainAggOut {
            reaction: a.reaction.snapshot(),
            reaction_sum_ps: a.reaction_sum_ps,
            arms: a.arms,
            fires: a.fires,
            resets: a.resets,
            steps_up: a.steps_up,
            steps_down: a.steps_down,
            episodes_reacted: a.episodes_reacted,
            episodes_abandoned: a.episodes_abandoned,
            occupancy: a.occupancy.snapshot(),
        }),
        timeline,
    })
}

/// Renders the episode-catalog view (`repro trace analyze --episodes`):
/// a per-run summary table plus the worst-`worst` *reacted* episodes by
/// reaction time (abandoned episodes never reacted, so they are excluded
/// from the worst listing but counted in the summary). `runs` pairs each
/// run label with its catalog in file order; the `episode` ordinal
/// printed in the worst table is the `K` that
/// `repro trace replay FILE --episode K` accepts.
pub fn episodes_report(runs: &[(String, Vec<Episode>)], worst: usize) -> String {
    let ns = |ps: u64| format!("{:.1} ns", ps as f64 / 1000.0);
    let total: usize = runs.iter().map(|(_, eps)| eps.len()).sum();
    let reacted: usize = runs
        .iter()
        .flat_map(|(_, eps)| eps)
        .filter(|e| e.reaction_ps.is_some())
        .count();

    let mut out = String::new();
    out.push_str("Episode catalog\n===============\n\n");
    out.push_str(&format!(
        "{} episodes across {} runs ({} reacted, {} abandoned)\n\n",
        total,
        runs.len(),
        reacted,
        total - reacted,
    ));

    let mut t = Table::new([
        "run",
        "episodes",
        "reacted",
        "abandoned",
        "relay resets",
        "mean reaction",
        "max reaction",
    ]);
    for (label, eps) in runs {
        let reactions: Vec<u64> = eps.iter().filter_map(|e| e.reaction_ps).collect();
        let (mean, max) = if reactions.is_empty() {
            ("-".to_string(), "-".to_string())
        } else {
            (
                ns(reactions.iter().sum::<u64>() / reactions.len() as u64),
                ns(reactions.iter().copied().max().unwrap_or(0)),
            )
        };
        t.row([
            label.clone(),
            eps.len().to_string(),
            reactions.len().to_string(),
            (eps.len() - reactions.len()).to_string(),
            eps.iter().map(|e| e.relay_resets).sum::<u64>().to_string(),
            mean,
            max,
        ]);
    }
    out.push_str("Per-run catalog:\n\n");
    out.push_str(&t.render());

    // Global ordinals enumerate runs in file order, episodes in onset
    // order within each run — exactly `TraceIndex::locate_episode`.
    let mut ranked: Vec<(u64, usize, usize, &str, &Episode)> = Vec::new();
    let mut ordinal = 0usize;
    for (run_idx, (label, eps)) in runs.iter().enumerate() {
        for ep in eps {
            if let Some(r) = ep.reaction_ps {
                ranked.push((r, run_idx, ordinal, label, ep));
            }
            ordinal += 1;
        }
    }
    ranked.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(a.1.cmp(&b.1))
            .then(a.4.onset_event_index.cmp(&b.4.onset_event_index))
    });
    ranked.truncate(worst);

    let mut t = Table::new([
        "episode", "run", "domain", "onset", "reaction", "resets", "offset",
    ]);
    for (r, _, k, label, ep) in &ranked {
        t.row([
            k.to_string(),
            (*label).to_string(),
            DOMAINS[ep.domain].to_string(),
            format!("{:.3} us", ep.onset_ps as f64 / 1e6),
            ns(*r),
            ep.relay_resets.to_string(),
            ep.block_offset.to_string(),
        ]);
    }
    out.push_str(&format!(
        "\nWorst {} reacted episodes (slowest onset->step first; replay one \
         with `repro trace replay FILE --episode K`):\n\n",
        ranked.len()
    ));
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::{OpIndex, TimePs};
    use mcd_sim::{CtrlEvent, DomainId, SignalKind, StepDir};

    fn sample_trace() -> String {
        let events = vec![
            TraceEvent::Controller {
                domain: DomainId::Int,
                event: CtrlEvent::WindowEnter {
                    at: TimePs::from_ns(100),
                    signal: SignalKind::Occupancy,
                    value: 3.0,
                    occupancy: 11,
                    dir: StepDir::Up,
                },
            },
            TraceEvent::Controller {
                domain: DomainId::Int,
                event: CtrlEvent::RelayArm {
                    at: TimePs::from_ns(100),
                    signal: SignalKind::Occupancy,
                    dir: StepDir::Up,
                    remaining: 2.0,
                },
            },
            TraceEvent::Controller {
                domain: DomainId::Int,
                event: CtrlEvent::RelayFire {
                    at: TimePs::from_ns(300),
                    signal: SignalKind::Occupancy,
                    dir: StepDir::Up,
                },
            },
            TraceEvent::FreqStep {
                at: TimePs::from_ns(300),
                domain: DomainId::Int,
                from: OpIndex(3),
                to: OpIndex(4),
                from_mhz: 255.0,
                to_mhz: 257.5,
                from_mv: 650.0,
                to_mv: 652.0,
            },
            TraceEvent::Controller {
                domain: DomainId::Fp,
                event: CtrlEvent::WindowEnter {
                    at: TimePs::from_ns(50),
                    signal: SignalKind::Delta,
                    value: -2.0,
                    occupancy: 1,
                    dir: StepDir::Down,
                },
            },
            TraceEvent::Controller {
                domain: DomainId::Fp,
                event: CtrlEvent::WindowExit {
                    at: TimePs::from_ns(90),
                    signal: SignalKind::Delta,
                    value: 0.0,
                    occupancy: 4,
                },
            },
            TraceEvent::QueueHistogram {
                at: TimePs::from_ns(400),
                domain: DomainId::Ls,
                samples: 4,
                counts: vec![1, 2, 1],
            },
        ];
        render_traces(&[("bench|adaptive|ops=1".to_string(), events)])
    }

    #[test]
    fn reconstructs_reactions_episodes_and_occupancy() {
        let analysis = analyze(&sample_trace()).expect("valid trace");
        assert_eq!(analysis.events, 7);
        assert_eq!(analysis.runs, 1);
        // INT: one reacted episode, 200ns reaction.
        assert_eq!(analysis.domains[0].reaction.count(), 1);
        assert_eq!(
            analysis.mean_reaction_time_ns(0),
            Some(200.0),
            "onset at 100ns, step at 300ns"
        );
        assert_eq!(analysis.domains[0].episodes_reacted, 1);
        assert_eq!(analysis.domains[0].arms, 1);
        assert_eq!(analysis.domains[0].fires, 1);
        // FP: one abandoned episode, no reaction.
        assert_eq!(analysis.domains[1].episodes_abandoned, 1);
        assert_eq!(analysis.mean_reaction_time_ns(1), None);
        // LS: occupancy histogram from the cumulative snapshot.
        assert_eq!(analysis.domains[2].occupancy.count(), 4);
        assert_eq!(analysis.domains[2].occupancy.max(), 2);
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let a = analyze(&sample_trace()).expect("valid").report();
        let b = analyze(&sample_trace()).expect("valid").report();
        assert_eq!(a, b);
        for section in [
            "Reaction time",
            "Relay activity",
            "Deviation episodes",
            "Queue occupancy",
            "Timeline of the busiest run",
        ] {
            assert!(a.contains(section), "missing {section} in:\n{a}");
        }
        assert!(a.contains("200.0 ns"));
    }

    #[test]
    fn run_order_in_the_file_does_not_matter() {
        let step = |domain| TraceEvent::FreqStep {
            at: TimePs::from_ns(500),
            domain,
            from: OpIndex(4),
            to: OpIndex(3),
            from_mhz: 257.5,
            to_mhz: 255.0,
            from_mv: 652.0,
            to_mv: 650.0,
        };
        let run_a = ("a|adaptive".to_string(), vec![step(DomainId::Int)]);
        let run_b = ("b|PID".to_string(), vec![step(DomainId::Ls)]);
        let forward = render_traces(&[run_a.clone(), run_b.clone()]);
        let backward = render_traces(&[run_b, run_a]);
        assert_ne!(forward, backward, "the files really differ");
        let a = analyze(&forward).expect("valid").report();
        let b = analyze(&backward).expect("valid").report();
        assert_eq!(a, b, "run order in the file must not change the report");
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let err = analyze("{\"run\": \"x\", \"oops\": 1}\n").unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
        assert!(err.to_string().contains("trace line 1"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn empty_input_is_a_typed_error_not_a_zero_report() {
        for input in ["", "\n", "  \n\n \n"] {
            let err = analyze(input).unwrap_err();
            assert_eq!(err.kind(), "config-invalid", "input {input:?}");
            assert!(err.to_string().contains("empty"), "got: {err}");
        }
    }

    #[test]
    fn truncated_final_line_is_dropped_with_a_partial_analysis_note() {
        let full = sample_trace();
        // Cut the file mid-way through its final line, as a killed
        // writer would leave it.
        let cut = &full[..full.len() - 20];
        assert!(!cut.ends_with('\n'));
        let analysis = analyze(cut).expect("partial analysis, not an error");
        assert_eq!(analysis.events, 6, "the seventh, cut line is dropped");
        let report = analysis.report();
        assert!(
            report.contains("NOTE: partial analysis"),
            "missing truncation note in:\n{report}"
        );
        assert!(report.contains("unterminated final line 7"));
        // The same mangled line *with* a terminator is a hard error: the
        // file claims the line is complete, so it is corrupt, not cut.
        let err = analyze(&format!("{cut}\n")).unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
        assert!(err.to_string().contains("trace line 7"));
    }

    #[test]
    fn parseable_unterminated_final_line_is_kept_without_a_note() {
        let full = sample_trace();
        let cut = full.strip_suffix('\n').expect("renders end in newline");
        let analysis = analyze(cut).expect("valid");
        assert_eq!(analysis.events, 7);
        assert!(!analysis.report().contains("NOTE: partial analysis"));
    }

    #[test]
    fn malformed_interior_lines_stay_hard_errors_even_when_unterminated() {
        let err = analyze("{\"run\": \"x\", \"oops\": 1}\n{\"run\"").unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
        assert!(err.to_string().contains("trace line 1"));
    }

    #[test]
    fn episodes_report_ranks_by_reaction_and_numbers_globally() {
        let ep = |domain, onset_idx: u64, onset_ps: u64, reaction: Option<u64>| Episode {
            domain,
            onset_event_index: onset_idx,
            onset_ps,
            close_event_index: onset_idx + 1,
            close_ps: onset_ps + reaction.unwrap_or(7),
            reaction_ps: reaction,
            relay_resets: 1,
            block_offset: 640 + onset_idx,
        };
        let runs = vec![
            (
                "a|adaptive".to_string(),
                vec![ep(0, 0, 1_000, Some(50_000)), ep(1, 4, 9_000, None)],
            ),
            ("b|PID".to_string(), vec![ep(2, 2, 5_000, Some(125_500))]),
        ];
        let report = episodes_report(&runs, 20);
        assert!(report.contains("3 episodes across 2 runs (2 reacted, 1 abandoned)"));
        // Worst listing: run b's 125.5 ns episode first (global ordinal
        // 2), then run a's 50 ns (ordinal 0); the abandoned one absent.
        let section = &report[report
            .find("Worst 2 reacted episodes")
            .expect("worst section")..];
        let worst = section.find("125.5 ns").expect("slowest listed");
        let next = section.find("50.0 ns").expect("second listed");
        assert!(worst < next, "slowest first:\n{section}");
    }

    #[test]
    fn episodes_report_is_deterministic() {
        let runs: Vec<(String, Vec<Episode>)> = vec![("r".into(), Vec::new())];
        assert_eq!(episodes_report(&runs, 5), episodes_report(&runs, 5));
    }
}
