//! Deterministic fault injection for hardening tests.
//!
//! Compiled in only under the `fault-inject` feature (CI's `faults` job);
//! the default build compiles the hook down to a no-op. Faults are
//! described by the `MCD_FAULTS` environment variable as a
//! comma-separated list of `key=action` entries, keyed by experiment id:
//!
//! * `fig7=panic` — panic every time the experiment starts (a permanent
//!   failure: the retry panics too).
//! * `fig7=panic-once` — panic on the first attempt only, so the
//!   harness's single retry succeeds (a transient failure).
//! * `table3=delay:200` — sleep 200 ms before the experiment body, long
//!   enough to trip a small `--run-timeout` budget.
//!
//! Keys that match nothing are ignored, so one `MCD_FAULTS` value can
//! drive a whole sweep.

#[cfg(feature = "fault-inject")]
mod imp {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};

    use crate::error::RunError;

    /// Keys whose `panic-once` fault already fired in this process.
    static FIRED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();

    fn first_firing(key: &str) -> bool {
        FIRED
            .get_or_init(|| Mutex::new(HashSet::new()))
            .lock()
            .expect("fault-injection state poisoned")
            .insert(key.to_string())
    }

    /// Applies any `MCD_FAULTS` entry matching `key`.
    pub fn injected_fault(key: &str) -> Result<(), RunError> {
        let Ok(spec) = std::env::var("MCD_FAULTS") else {
            return Ok(());
        };
        for entry in spec.split(',') {
            let Some((k, action)) = entry.trim().split_once('=') else {
                continue;
            };
            if k != key {
                continue;
            }
            match action {
                "panic" => panic!("injected fault: {key}"),
                "panic-once" => {
                    if first_firing(key) {
                        panic!("injected fault (once): {key}");
                    }
                }
                other => {
                    let Some(ms) = other.strip_prefix("delay:") else {
                        return Err(RunError::Config(format!(
                            "unknown MCD_FAULTS action {other:?} for {key}"
                        )));
                    };
                    let ms: u64 = ms.parse().map_err(|_| {
                        RunError::Config(format!("bad MCD_FAULTS delay {other:?} for {key}"))
                    })?;
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
        }
        Ok(())
    }
}

#[cfg(feature = "fault-inject")]
pub use imp::injected_fault;

/// No-op in default builds; see the module docs.
#[cfg(not(feature = "fault-inject"))]
#[inline]
pub fn injected_fault(_key: &str) -> Result<(), crate::error::RunError> {
    Ok(())
}
