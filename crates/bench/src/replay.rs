//! Time-travel replay: re-simulating the segment around one catalogued
//! episode from the nearest snapshot anchor.
//!
//! A `.mcdt` recording made with sharding enabled carries the machine
//! snapshot at every shard boundary. `repro trace replay FILE --episode K`
//! restores the last anchor at or before the episode's onset, rebuilds
//! the machine from the run's recorded replay spec, and advances it to
//! the first anchor past the episode's close (or to the end of the run)
//! with full tracing *and* telemetry on — then proves the replayed event
//! stream is byte-identical to the corresponding slice of the original
//! recording. The shard-equivalence invariant (PR 8) is what makes the
//! skipped intermediate snapshot round-trips immaterial: the stream does
//! not depend on where the run paused.

use mcd_sim::telemetry::{SimTelemetry, TelemetrySink};
use mcd_sim::{SimConfig, TraceEvent};
use mcd_trace::{read_anchor_at, read_mcdt, Episode};

use crate::checkpoint::{fnv1a64, str_field, u64_field, FNV_OFFSET};
use crate::error::RunError;
use crate::runner::{build_machine, ControllerActivity, RecorderSink, RunConfig, Scheme};

/// Fingerprint of a simulator configuration — replay specs record it so
/// a recording made under a non-default `SimConfig` fails loudly instead
/// of silently replaying the wrong machine.
fn sim_fingerprint(sim: &SimConfig) -> u64 {
    fnv1a64(FNV_OFFSET, format!("{sim:?}").as_bytes())
}

/// Serializes everything needed to rebuild a registry run from scratch
/// as one flat JSON object (parsed back by [`parse_replay_spec`]).
pub fn replay_spec(benchmark: &str, scheme: Scheme, cfg: &RunConfig) -> String {
    format!(
        "{{\"benchmark\":\"{benchmark}\",\"scheme\":\"{}\",\"ops\":{},\"seed\":{},\
         \"traces\":{},\"pid_interval\":{},\"q_ref_scale\":{},\"shard_ops\":{},\"sim_fp\":{}}}",
        scheme.name(),
        cfg.ops,
        cfg.seed,
        u64::from(cfg.traces),
        cfg.pid_interval,
        cfg.q_ref_scale,
        cfg.shard_ops.unwrap_or(0),
        sim_fingerprint(&cfg.sim)
    )
}

/// Inverse of [`replay_spec`]. The reconstructed config always carries
/// the default [`SimConfig`]; a recorded fingerprint that disagrees is a
/// typed error (the run was made under simulator knobs the spec cannot
/// carry).
pub fn parse_replay_spec(spec: &str) -> Result<(String, Scheme, RunConfig), RunError> {
    let err = |what: &str| RunError::Config(format!("replay spec: {what}: {spec}"));
    let benchmark = str_field(spec, "benchmark").ok_or_else(|| err("no benchmark"))?;
    let scheme_name = str_field(spec, "scheme").ok_or_else(|| err("no scheme"))?;
    let scheme = Scheme::by_name(&scheme_name).ok_or_else(|| err("unknown scheme"))?;
    let ops = u64_field(spec, "ops").ok_or_else(|| err("no ops"))?;
    let seed = u64_field(spec, "seed").ok_or_else(|| err("no seed"))?;
    let traces = u64_field(spec, "traces").ok_or_else(|| err("no traces flag"))? != 0;
    let pid_interval = u64_field(spec, "pid_interval").ok_or_else(|| err("no pid_interval"))?;
    let q_ref_scale =
        crate::checkpoint::f64_field(spec, "q_ref_scale").ok_or_else(|| err("no q_ref_scale"))?;
    let shard_ops = u64_field(spec, "shard_ops").ok_or_else(|| err("no shard_ops"))?;
    let sim_fp = u64_field(spec, "sim_fp").ok_or_else(|| err("no sim fingerprint"))?;
    let cfg = RunConfig {
        ops,
        seed,
        traces,
        pid_interval,
        q_ref_scale,
        shard_ops: (shard_ops > 0).then_some(shard_ops),
        warm_dir: None,
        sim: SimConfig::default(),
    };
    if sim_fingerprint(&cfg.sim) != sim_fp {
        return Err(RunError::Config(
            "replay spec: the run was recorded under a non-default simulator \
             configuration, which the spec cannot reconstruct"
                .to_string(),
        ));
    }
    Ok((benchmark, scheme, cfg))
}

/// The result of replaying one episode's segment.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Label of the run the episode belongs to.
    pub run_label: String,
    /// The episode's global ordinal `K` (catalog order across runs).
    pub global_ordinal: usize,
    /// Its ordinal within the run.
    pub run_ordinal: usize,
    /// The catalog entry.
    pub episode: Episode,
    /// First replayed event's index in the run's stream.
    pub start_event_index: u64,
    /// One past the last replayed event's index.
    pub end_event_index: u64,
    /// Retired count of the restored anchor (`None` = cold start from
    /// the beginning of the run).
    pub anchor_retired: Option<u64>,
    /// The events the replay produced.
    pub replayed: Vec<TraceEvent>,
    /// Whether the replayed stream is byte-identical to the original
    /// slice — the replay contract.
    pub byte_identical: bool,
    /// Reaction-time samples the segment's telemetry recorded, summed
    /// over back-end domains.
    pub reaction_count: u64,
    /// Mean reaction time over those samples, nanoseconds.
    pub reaction_mean_ns: Option<f64>,
}

impl ReplayOutcome {
    /// Human-readable replay report.
    pub fn report(&self) -> String {
        let ep = &self.episode;
        let domain = ControllerActivity::DOMAINS[ep.domain];
        let reaction = match ep.reaction_ps {
            Some(ps) => format!("{:.1}ns", ps as f64 / 1000.0),
            None => "abandoned".to_string(),
        };
        let anchor = match self.anchor_retired {
            Some(r) => format!("anchor at {r} retired instructions"),
            None => "cold start (no anchor at or before the onset)".to_string(),
        };
        let verdict = if self.byte_identical {
            "byte-identical to the original recording"
        } else {
            "DIVERGED from the original recording"
        };
        let mean = match self.reaction_mean_ns {
            Some(ns) => format!("{ns:.1}ns"),
            None => "n/a".to_string(),
        };
        format!(
            "Episode {k}: {domain} in {label}\n\
             ==============={pad}\n\
             onset    event {onset_i} at {onset} ps\n\
             close    event {close_i} at {close} ps\n\
             reaction {reaction}  (relay resets during episode: {resets})\n\
             segment  events [{s}, {e}) replayed from {anchor}\n\
             verify   {n} events replayed, {verdict}\n\
             telemetry  {rc} reaction(s) in segment, mean {mean}\n",
            k = self.global_ordinal,
            pad = "=".repeat(self.run_label.len() + domain.len() + 14),
            label = self.run_label,
            onset_i = ep.onset_event_index,
            onset = ep.onset_ps,
            close_i = ep.close_event_index,
            close = ep.close_ps,
            resets = ep.relay_resets,
            s = self.start_event_index,
            e = self.end_event_index,
            n = self.replayed.len(),
            rc = self.reaction_count,
        )
    }
}

/// Replays the segment around catalogued episode `k` of a `.mcdt`
/// recording and verifies it against the original stream.
pub fn replay_episode(bytes: &[u8], k: usize) -> Result<ReplayOutcome, RunError> {
    let codec = |e: mcd_trace::TraceCodecError| RunError::Config(e.to_string());
    let file = read_mcdt(bytes).map_err(codec)?;
    let (ri, ei) = file.index.locate_episode(k).ok_or_else(|| {
        RunError::Config(format!(
            "episode {k} out of range: the catalog holds {} episode(s)",
            file.index.episode_count()
        ))
    })?;
    let run_idx = &file.index.runs[ri];
    let episode = run_idx.episodes[ei];
    let spec = run_idx.spec.as_deref().ok_or_else(|| {
        RunError::Config(format!(
            "run {:?} recorded no replay spec (ad-hoc custom runs are not replayable)",
            run_idx.label
        ))
    })?;
    let (benchmark, scheme, cfg) = parse_replay_spec(spec)?;

    // The segment: last anchor at or before the onset → first anchor
    // past the close (exclusive), else the end of the run.
    let start_anchor = run_idx
        .anchors
        .iter()
        .take_while(|a| a.event_index <= episode.onset_event_index)
        .last()
        .copied();
    let end_anchor = run_idx
        .anchors
        .iter()
        .find(|a| a.event_index > episode.close_event_index)
        .copied();
    let original = &file.runs[ri].events;
    let start_idx = start_anchor.map_or(0, |a| a.event_index);
    let end_idx = end_anchor.map_or(original.len() as u64, |a| a.event_index);

    let mut machine = build_machine(&benchmark, scheme, &cfg)?;
    let anchor_retired = match start_anchor {
        Some(aref) if aref.event_index > 0 || aref.retired > 0 => {
            let anchor = read_anchor_at(bytes, aref.offset).map_err(codec)?;
            machine
                .restore(&anchor.snapshot)
                .map_err(|e| RunError::Config(format!("recorded anchor failed to restore: {e}")))?;
            Some(aref.retired)
        }
        _ => None,
    };

    let telemetry = SimTelemetry::new();
    let mut sink = TelemetrySink::new(&telemetry, RecorderSink::new());
    match end_anchor {
        Some(aref) => {
            // Advance to exactly the retired count the original run
            // snapshotted at; shard equivalence guarantees the pause
            // lands on the same inter-event point.
            if machine.try_advance_traced(aref.retired, &mut sink)? {
                return Err(RunError::Config(format!(
                    "replay drained before reaching the end anchor at {} retired",
                    aref.retired
                )));
            }
        }
        None => {
            // To the end of the run, including the final histogram flush.
            while !machine.try_advance_traced(u64::MAX, &mut sink)? {}
            machine.finish_traced(&mut sink);
        }
    }

    let (replayed, _anchors) = sink.into_inner().into_parts();
    let want = original
        .get(start_idx as usize..end_idx as usize)
        .ok_or_else(|| {
            RunError::Config(format!(
                "index segment [{start_idx}, {end_idx}) exceeds the {}-event stream",
                original.len()
            ))
        })?;
    let byte_identical = replayed.len() == want.len()
        && replayed
            .iter()
            .zip(want)
            .all(|(a, b)| a.to_json() == b.to_json());

    let (mut reaction_count, mut reaction_sum_ps) = (0u64, 0u64);
    for h in &telemetry.reaction_ps {
        let snap = h.snapshot();
        reaction_count += snap.count();
        reaction_sum_ps += snap.sum();
    }
    let reaction_mean_ns =
        (reaction_count > 0).then(|| reaction_sum_ps as f64 / reaction_count as f64 / 1000.0);

    Ok(ReplayOutcome {
        run_label: run_idx.label.clone(),
        global_ordinal: k,
        run_ordinal: ei,
        episode,
        start_event_index: start_idx,
        end_event_index: end_idx,
        anchor_retired,
        replayed,
        byte_identical,
        reaction_count,
        reaction_mean_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_spec_round_trips() {
        let cfg = RunConfig::quick();
        let spec = replay_spec("gzip", Scheme::Adaptive, &cfg);
        let (benchmark, scheme, parsed) = parse_replay_spec(&spec).expect("round trip");
        assert_eq!(benchmark, "gzip");
        assert_eq!(scheme, Scheme::Adaptive);
        assert_eq!(parsed.ops, cfg.ops);
        assert_eq!(parsed.seed, cfg.seed);
        assert_eq!(parsed.traces, cfg.traces);
        assert_eq!(parsed.pid_interval, cfg.pid_interval);
        assert_eq!(parsed.q_ref_scale, cfg.q_ref_scale);
        assert_eq!(parsed.shard_ops, cfg.shard_ops);
    }

    #[test]
    fn spec_with_modified_sim_config_is_rejected() {
        let mut cfg = RunConfig::quick();
        cfg.sim.jitter_sigma_ps = 0.0;
        let spec = replay_spec("gzip", Scheme::Pid, &cfg);
        let e = parse_replay_spec(&spec).expect_err("non-default sim must be refused");
        assert!(e.to_string().contains("non-default"), "{e}");
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "",
            "{}",
            "{\"benchmark\":\"gzip\"}",
            "{\"scheme\":\"nope\"}",
        ] {
            assert!(parse_replay_spec(bad).is_err(), "accepted {bad:?}");
        }
    }
}
