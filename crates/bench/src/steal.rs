//! Run-granularity work stealing shared by every experiment.
//!
//! The old layout gave each experiment its own scoped-thread batch
//! ([`crate::parallel::par_map`]): workers belonged to the batch that
//! spawned them, so a long tail run — the 4.8 M-instruction wavelength
//! points dominate `ablate-wavelength` — left every other core idle
//! until its batch drained, and two experiments running at once could
//! oversubscribe the machine with two full worker sets. The
//! [`StealPool`] replaces per-batch threads with one process-wide set of
//! workers that claim individual *items* from whichever submitted batch
//! has work left, front to back: an experiment's runs never wait on an
//! unrelated batch finishing, and the number of concurrently executing
//! simulations never exceeds the pool's worker count no matter how many
//! experiments are in flight.
//!
//! Submitters block until their batch completes, so a batch closure may
//! borrow from the submitting stack — the same guarantee scoped threads
//! give. The lifetime erasure that makes this expressible across a
//! long-lived pool is the one use of `unsafe` in this crate; the
//! soundness argument lives on [`StealPool::scope`].

#![allow(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

thread_local! {
    /// Whether this thread is a pool worker (see [`on_worker`]).
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    /// The experiment tag charged for work submitted from this thread
    /// (see [`current_tag`]). Workers inherit the submitter's tag for
    /// the duration of each claimed item.
    static CURRENT_TAG: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Whether the current thread is a pool worker. Fan-out *inside* a batch
/// item must run inline — a worker blocking on its own pool could wait
/// on the very slot it occupies — so [`StealPool::scope`] (and
/// everything built on it) degrades to a serial loop on workers.
pub fn on_worker() -> bool {
    IS_WORKER.with(Cell::get)
}

/// The experiment tag attributed to simulations started from this
/// thread. Set by `RunSet::with_tag` on submitter threads and inherited
/// by workers per claimed item.
pub fn current_tag() -> Option<&'static str> {
    CURRENT_TAG.with(Cell::get)
}

/// Replaces the current thread's tag, returning the previous value so
/// callers can restore it.
pub fn set_current_tag(tag: Option<&'static str>) -> Option<&'static str> {
    CURRENT_TAG.with(|t| t.replace(tag))
}

/// A pointer to the submitter's `&(dyn Fn(usize) + Sync)` with its
/// lifetime erased so it can sit in the pool queue.
///
/// SAFETY: the pointee is `Sync`, so calling it from several workers at
/// once is fine, and the pointer is only dereferenced while the
/// submitting stack frame is pinned by the blocking wait in
/// [`StealPool::scope`] (see the invariant documented there).
struct ErasedRun(*const (dyn Fn(usize) + Sync));

unsafe impl Send for ErasedRun {}
unsafe impl Sync for ErasedRun {}

/// Completion bookkeeping for one batch, guarded by the batch mutex.
struct Completion {
    /// Items not yet finished (claimed-and-running items count).
    remaining: usize,
    /// First panic payload raised by an item, replayed to the submitter
    /// once the whole batch has completed (matching
    /// [`crate::parallel::par_map`]'s propagate-after-everyone-stops).
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

/// One submitted batch: the type-erased item runner plus claim and
/// completion state.
struct Batch {
    run: ErasedRun,
    len: usize,
    /// Next unclaimed item index. Claims happen under the pool lock, so
    /// the atomic is really a Cell the borrow checker accepts in an
    /// `Arc`.
    next: AtomicUsize,
    /// Tag charged to this batch's items (see [`current_tag`]).
    tag: Option<&'static str>,
    done: Mutex<Completion>,
    finished: Condvar,
}

/// Queue state shared by workers and submitters.
struct PoolState {
    queue: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

/// A process-wide pool of workers claiming items across every submitted
/// batch. Dropping the pool shuts the workers down and joins them.
pub struct StealPool {
    state: Arc<(Mutex<PoolState>, Condvar)>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for StealPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StealPool({} workers)", self.workers.len())
    }
}

impl StealPool {
    /// Spawns a pool with `workers` threads (minimum one).
    pub fn new(workers: usize) -> StealPool {
        let state = Arc::new((
            Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let workers = (0..workers.max(1))
            .map(|n| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("mcd-steal-{n}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn steal worker")
            })
            .collect();
        StealPool { state, workers }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(0..len)` on the pool, blocking until every item finishes.
    /// Item panics are replayed to the caller (first one wins) only
    /// after the whole batch completes. Called from a pool worker, the
    /// batch runs inline instead (see [`on_worker`]).
    ///
    /// SAFETY argument for the lifetime erasure below: workers only call
    /// through the erased pointer between claiming an index and
    /// decrementing `remaining`, and this function does not return until
    /// `remaining == 0` — so every dereference happens while `f` (and
    /// everything it borrows) is still pinned on this stack frame.
    pub fn scope(&self, len: usize, tag: Option<&'static str>, f: &(dyn Fn(usize) + Sync)) {
        if len == 0 {
            return;
        }
        if on_worker() {
            for i in 0..len {
                f(i);
            }
            return;
        }
        let run = ErasedRun(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        let batch = Arc::new(Batch {
            run,
            len,
            next: AtomicUsize::new(0),
            tag,
            done: Mutex::new(Completion {
                remaining: len,
                panic: None,
            }),
            finished: Condvar::new(),
        });
        {
            let (lock, wake) = &*self.state;
            lock.lock()
                .expect("steal pool poisoned")
                .queue
                .push_back(Arc::clone(&batch));
            wake.notify_all();
        }
        let mut done = batch.done.lock().expect("batch completion poisoned");
        while done.remaining > 0 {
            done = batch
                .finished
                .wait(done)
                .expect("batch completion poisoned");
        }
        if let Some(payload) = done.panic.take() {
            drop(done);
            resume_unwind(payload);
        }
    }
}

impl Drop for StealPool {
    fn drop(&mut self) {
        {
            let (lock, wake) = &*self.state;
            lock.lock().expect("steal pool poisoned").shutdown = true;
            wake.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(state: &(Mutex<PoolState>, Condvar)) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let (batch, index) = {
            let (lock, wake) = state;
            let mut st = lock.lock().expect("steal pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                // Claim from the *front* batch with unclaimed items:
                // FIFO across batches keeps an early experiment's tail
                // from starving behind later arrivals. The claimer of a
                // batch's last item retires it from the queue; its
                // in-flight items finish on the workers running them.
                let mut claimed = None;
                while let Some(front) = st.queue.front() {
                    let i = front.next.fetch_add(1, Ordering::Relaxed);
                    if i < front.len {
                        claimed = Some((Arc::clone(front), i));
                        if i + 1 == front.len {
                            st.queue.pop_front();
                        }
                        break;
                    }
                    st.queue.pop_front();
                }
                match claimed {
                    Some(c) => break c,
                    None => st = wake.wait(st).expect("steal pool poisoned"),
                }
            }
        };
        let prev = set_current_tag(batch.tag);
        // SAFETY: see `StealPool::scope` — the submitter is blocked
        // until we decrement `remaining` below, so the pointee is alive.
        let outcome = catch_unwind(AssertUnwindSafe(|| (unsafe { &*batch.run.0 })(index)));
        set_current_tag(prev);
        let mut done = batch.done.lock().expect("batch completion poisoned");
        if let Err(payload) = outcome {
            if done.panic.is_none() {
                done.panic = Some(payload);
            }
        }
        done.remaining -= 1;
        if done.remaining == 0 {
            batch.finished.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn scope_runs_every_index_exactly_once() {
        let pool = StealPool::new(4);
        let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        pool.scope(hits.len(), None, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn empty_batches_return_immediately() {
        let pool = StealPool::new(2);
        pool.scope(0, None, &|_| panic!("no items, no calls"));
    }

    #[test]
    fn item_panics_surface_after_the_batch_completes() {
        let pool = StealPool::new(2);
        let completed = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&completed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(8, None, &|i| {
                if i == 3 {
                    panic!("item three exploded");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "the panic must propagate");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            7,
            "every other item still ran"
        );
    }

    #[test]
    fn nested_scope_from_a_worker_runs_inline() {
        let pool = StealPool::new(1);
        let inner = Arc::new(AtomicU32::new(0));
        let i2 = Arc::clone(&inner);
        // One worker: a blocking nested submit would deadlock; inline
        // execution must finish instead.
        pool.scope(1, None, &|_| {
            assert!(on_worker());
            pool.scope(5, None, &|_| {
                i2.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_submitters_share_one_worker_set() {
        let pool = Arc::new(StealPool::new(2));
        let ran = Arc::new(AtomicU32::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    pool.scope(10, None, &|_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(ran.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn workers_carry_the_batch_tag() {
        let pool = StealPool::new(2);
        let seen = Mutex::new(Vec::new());
        pool.scope(4, Some("exp-a"), &|_| {
            seen.lock().unwrap().push(current_tag());
        });
        assert_eq!(*seen.lock().unwrap(), vec![Some("exp-a"); 4]);
        assert_eq!(current_tag(), None, "the submitter's own tag is untouched");
    }
}
