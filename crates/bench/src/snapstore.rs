//! On-disk warm-start snapshot store (`mcd-serve --warm DIR`).
//!
//! A [`SnapStore`] keeps the latest shard-boundary snapshot of each run,
//! keyed by the run's full identity (benchmark, scheme, every
//! report-shaping knob, and the simulator configuration). A later
//! identical run restores the snapshot and simulates only the tail —
//! byte-identical to a cold run by the shard-equivalence invariant — so
//! a service restart answers warm instead of re-simulating from zero.
//!
//! Every entry is stamped with the writing binary's
//! [`code_fingerprint`]: a snapshot produced by different code is a
//! *miss*, never trusted. Entries are written to a temporary file and
//! renamed into place, so a crash mid-write leaves either the old entry
//! or none — a truncated entry additionally fails the engine's own
//! framing checks on restore and falls back to a cold run.

use std::path::{Path, PathBuf};

use crate::checkpoint::{code_fingerprint, fnv1a64, write_file, FNV_OFFSET};
use crate::error::RunError;

/// Framing version of the store's header (bumped when it changes).
const STORE_VERSION: u32 = 1;

/// A directory of warm-start snapshots (see the module docs).
#[derive(Debug, Clone)]
pub struct SnapStore {
    dir: PathBuf,
    code: String,
}

impl SnapStore {
    /// Opens (creating if needed) `dir` under the running binary's code
    /// fingerprint.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapStore, RunError> {
        Self::open_for_code(dir, code_fingerprint())
    }

    /// [`SnapStore::open`] under an explicit code fingerprint — the test
    /// surface for proving that a stale store is rejected, mirroring
    /// [`crate::checkpoint::code_fingerprint_for`].
    pub fn open_for_code(dir: impl Into<PathBuf>, code: String) -> Result<SnapStore, RunError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| RunError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(SnapStore { dir, code })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entry file for `key`: the key hash names the file, and the full
    /// key is repeated in the header so a hash collision reads as a miss
    /// instead of restoring the wrong run's state.
    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!(
            "{:016x}.msnap",
            fnv1a64(FNV_OFFSET, key.as_bytes())
        ))
    }

    /// Stores `snapshot` as the latest boundary for `key`, atomically
    /// (write-to-temp then rename — readers see the old entry or the new
    /// one, never a torn mix).
    pub fn save(&self, key: &str, snapshot: &[u8]) -> Result<(), RunError> {
        let header = format!("msnap {STORE_VERSION}\n{}\n{key}\n", self.code);
        let mut buf = Vec::with_capacity(header.len() + snapshot.len());
        buf.extend_from_slice(header.as_bytes());
        buf.extend_from_slice(snapshot);
        write_file(&self.path(key), &buf)
    }

    /// The stored snapshot for `key`, or `None` for anything that must
    /// not be trusted: absent entries, a different store version, a
    /// different code fingerprint, a key-hash collision, or a header too
    /// mangled to parse.
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.path(key)).ok()?;
        let (version, rest) = split_line(&bytes)?;
        (version == format!("msnap {STORE_VERSION}")).then_some(())?;
        let (code, rest) = split_line(rest)?;
        (code == self.code).then_some(())?;
        let (stored_key, rest) = split_line(rest)?;
        (stored_key == key).then_some(())?;
        Some(rest.to_vec())
    }
}

/// Splits off the first `\n`-terminated line as UTF-8 text.
fn split_line(bytes: &[u8]) -> Option<(&str, &[u8])> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    Some((std::str::from_utf8(&bytes[..nl]).ok()?, &bytes[nl + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch_dir() -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "mcd-snapstore-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn save_then_load_roundtrips_bytes() {
        let dir = scratch_dir();
        let store = SnapStore::open(&dir).expect("open");
        assert_eq!(store.load("run-a"), None, "empty store misses");
        store.save("run-a", &[1, 2, 3, 0, 255]).expect("save");
        assert_eq!(store.load("run-a"), Some(vec![1, 2, 3, 0, 255]));
        // Overwrite keeps only the latest boundary.
        store.save("run-a", &[9]).expect("save again");
        assert_eq!(store.load("run-a"), Some(vec![9]));
        assert_eq!(store.dir(), dir.as_path());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_code_fingerprint_is_a_miss_not_a_hit() {
        let dir = scratch_dir();
        let old = SnapStore::open_for_code(&dir, "v0.0.0-old+xdead".into()).expect("open old");
        old.save("run-a", b"old-state").expect("save");
        let current = SnapStore::open(&dir).expect("open current");
        assert_eq!(
            current.load("run-a"),
            None,
            "a snapshot written by different code must never be trusted"
        );
        // The old binary would still see its own entry.
        assert_eq!(old.load("run-a").as_deref(), Some(&b"old-state"[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_key_and_torn_entries_are_misses() {
        let dir = scratch_dir();
        let store = SnapStore::open(&dir).expect("open");
        store.save("run-a", b"payload").expect("save");
        assert_eq!(store.load("run-b"), None, "different key, different entry");
        // Truncate the entry below its header: unreadable, so a miss.
        let path = store.path("run-a");
        let bytes = std::fs::read(&path).expect("read entry");
        std::fs::write(&path, &bytes[..4]).expect("truncate");
        assert_eq!(store.load("run-a"), None, "torn entries are not trusted");
        std::fs::remove_dir_all(&dir).ok();
    }
}
