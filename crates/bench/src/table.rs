//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns (first column left-aligned,
    /// the rest right-aligned).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn tracks_row_count() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
