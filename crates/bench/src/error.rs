//! Typed errors for experiment runs (DESIGN.md §7).
//!
//! A sweep over many (benchmark, scheme, configuration) runs must not die
//! on the first bad run: the harness distinguishes *permanent* failures
//! (a configuration that can never work, a workload that does not exist)
//! from *transient* ones (a panic in a worker, a run that blew its
//! wall-clock budget) so it can retry the latter once, finish everything
//! else, and report a structured failure table at the end.

use mcd_power::TimePs;
use mcd_sim::SimError;

/// Why one experiment run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The simulator or run configuration is structurally invalid — the
    /// run can never succeed, whatever the retry policy.
    Config(String),
    /// The benchmark is unknown or its workload specification is
    /// unusable.
    Workload(String),
    /// The simulation exceeded `max_sim_time` before retiring its
    /// instruction budget — the livelock guard fired.
    Diverged {
        /// Simulated time when the guard fired.
        at: TimePs,
        /// Instructions retired by then.
        retired: u64,
    },
    /// The run exceeded its wall-clock budget (`repro --run-timeout`).
    Timeout {
        /// The budget that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The worker thread panicked; the payload message is preserved.
    Panicked(String),
    /// A filesystem operation (checkpoint, report, trace output) failed.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying error's message.
        message: String,
    },
}

impl RunError {
    /// Short machine-readable class label, as used in the failure table
    /// and the checkpoint records.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Config(_) => "config-invalid",
            RunError::Workload(_) => "workload-invalid",
            RunError::Diverged { .. } => "sim-diverged",
            RunError::Timeout { .. } => "timeout",
            RunError::Panicked(_) => "panicked",
            RunError::Io { .. } => "io",
        }
    }

    /// Whether a retry could plausibly succeed. Panics and timeouts are
    /// environmental (a wedged thread, a loaded machine); everything else
    /// is deterministic and would fail identically.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunError::Timeout { .. } | RunError::Panicked(_))
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(why) => write!(f, "invalid configuration: {why}"),
            RunError::Workload(why) => write!(f, "invalid workload: {why}"),
            RunError::Diverged { at, retired } => write!(
                f,
                "simulation diverged: exceeded max_sim_time at {at} with {retired} retired"
            ),
            RunError::Timeout { limit_ms } => {
                write!(f, "run exceeded its {limit_ms} ms wall-clock budget")
            }
            RunError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            RunError::Io { path, message } => write!(f, "io error on {path}: {message}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::InvalidConfig(why) => RunError::Config(why),
            SimError::InvalidWorkload(why) => RunError::Workload(why),
            SimError::Diverged { at, retired } => RunError::Diverged { at, retired },
        }
    }
}

/// Extracts a printable message from a `catch_unwind` payload. Panic
/// payloads are almost always `&str` or `String`; anything else gets a
/// placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_labels() {
        let cases: [(RunError, &str); 6] = [
            (RunError::Config("x".into()), "config-invalid"),
            (RunError::Workload("x".into()), "workload-invalid"),
            (
                RunError::Diverged {
                    at: TimePs::new(1),
                    retired: 0,
                },
                "sim-diverged",
            ),
            (RunError::Timeout { limit_ms: 5 }, "timeout"),
            (RunError::Panicked("x".into()), "panicked"),
            (
                RunError::Io {
                    path: "p".into(),
                    message: "m".into(),
                },
                "io",
            ),
        ];
        for (e, kind) in cases {
            assert_eq!(e.kind(), kind);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn only_panics_and_timeouts_are_transient() {
        assert!(RunError::Timeout { limit_ms: 1 }.is_transient());
        assert!(RunError::Panicked("boom".into()).is_transient());
        assert!(!RunError::Config("bad".into()).is_transient());
        assert!(!RunError::Workload("bad".into()).is_transient());
        assert!(!RunError::Diverged {
            at: TimePs::new(1),
            retired: 0
        }
        .is_transient());
        assert!(!RunError::Io {
            path: "p".into(),
            message: "m".into()
        }
        .is_transient());
    }

    #[test]
    fn sim_errors_map_onto_run_errors() {
        let e: RunError = SimError::InvalidConfig("w".into()).into();
        assert_eq!(e, RunError::Config("w".into()));
        let e: RunError = SimError::InvalidWorkload("w".into()).into();
        assert_eq!(e, RunError::Workload("w".into()));
        let e: RunError = SimError::Diverged {
            at: TimePs::new(7),
            retired: 3,
        }
        .into();
        assert_eq!(e.kind(), "sim-diverged");
    }
}
