//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 5), plus the Section 3/4 analyses and a set of
//! ablations. See DESIGN.md for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured records.
//!
//! The `repro` binary dispatches one subcommand per artifact:
//!
//! ```text
//! cargo run --release -p mcd-bench --bin repro -- table1
//! cargo run --release -p mcd-bench --bin repro -- all --ops 600000
//! ```
//!
//! # Example
//!
//! ```
//! use mcd_bench::runner::{RunConfig, Scheme};
//!
//! let cfg = RunConfig::quick();
//! let result = mcd_bench::runner::run("adpcm_encode", Scheme::Adaptive, &cfg)
//!     .expect("known benchmark under a valid configuration");
//! assert!(result.instructions > 0);
//! ```

// `deny` rather than `forbid`: the work-stealing pool (`steal`) needs
// one documented lifetime erasure and opts in module-locally, exactly
// as `mcd-serve` does for its syscall shims.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod experiments;
pub mod fault;
pub mod parallel;
pub mod replay;
pub mod runner;
pub mod snapstore;
pub mod steal;
pub mod table;
pub mod trace_analyze;

pub use error::RunError;
pub use runner::{RunConfig, RunSet, Scheme};
pub use table::Table;
