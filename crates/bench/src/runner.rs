//! Shared run plumbing: schemes × benchmarks × configurations.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_baselines::{
    AttackDecayController, FeedbackDvsController, IntegralGainController, PidConfig, PidController,
};
use mcd_sim::metrics::Metrics;
use mcd_sim::telemetry::{SimTelemetry, TelemetrySink};
#[cfg(test)]
use mcd_sim::trace::VecSink;
use mcd_sim::trace::{NullSink, TraceEvent, TraceSink};
use mcd_sim::{DomainId, DvfsController, Machine, SimConfig, SimResult, SnapshotSource};
use mcd_telemetry::{Histogram, HistogramSnapshot, Profiler};
use mcd_trace::{Anchor, RunRecording};
use mcd_workloads::{registry, MicroOp, TraceGenerator};

use crate::error::RunError;
use crate::snapstore::SnapStore;
use crate::steal::{self, StealPool};

/// The DVFS policy attached to the three back-end domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No DVFS: every domain at the maximum point (the normalization
    /// baseline).
    Baseline,
    /// This paper's adaptive controller.
    Adaptive,
    /// The PID fixed-interval baseline \[23\].
    Pid,
    /// The attack/decay fixed-interval baseline \[9\].
    AttackDecay,
    /// The adjustable-gain integral power regulator (arXiv:1709.04859).
    IntegralGain,
    /// The control-theoretic feedback DVS scheme (arXiv:0806.0132).
    FeedbackDvs,
}

impl Scheme {
    /// The three DVFS schemes of the paper's own comparison (everything
    /// but the baseline). The headline figures and tables enumerate
    /// exactly these; the wider literature baselines live in
    /// [`Scheme::BAKEOFF`].
    pub const CONTROLLED: [Scheme; 3] = [Scheme::Adaptive, Scheme::Pid, Scheme::AttackDecay];

    /// Every controlled scheme in the bake-off matrix: the paper's three
    /// plus the two wider-literature baselines.
    pub const BAKEOFF: [Scheme; 5] = [
        Scheme::Adaptive,
        Scheme::Pid,
        Scheme::AttackDecay,
        Scheme::IntegralGain,
        Scheme::FeedbackDvs,
    ];

    /// Scheme name as printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Adaptive => "adaptive",
            Scheme::Pid => "PID",
            Scheme::AttackDecay => "attack/decay",
            Scheme::IntegralGain => "integral-gain",
            Scheme::FeedbackDvs => "feedback-DVS",
        }
    }

    /// Inverse of [`Scheme::name`] — how replay specs name schemes.
    pub fn by_name(name: &str) -> Option<Scheme> {
        [
            Scheme::Baseline,
            Scheme::Adaptive,
            Scheme::Pid,
            Scheme::AttackDecay,
        ]
        .into_iter()
        .chain(Scheme::BAKEOFF)
        .find(|s| s.name() == name)
    }
}

/// Options for one simulation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Dynamic instructions per run.
    pub ops: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Record occupancy/frequency traces.
    pub traces: bool,
    /// PID interval length in instructions (Table 3 sweeps this).
    pub pid_interval: u64,
    /// Adaptive-controller configuration factory knob: reference-occupancy
    /// scale (1.0 = the paper's 6/4/4).
    pub q_ref_scale: f64,
    /// Shard length in retired instructions: a run pauses at each
    /// multiple, round-trips the engine through a serialized snapshot,
    /// and continues — byte-identical to an uninterrupted run (the
    /// shard-equivalence invariant), so this is purely a scheduling
    /// knob: per-segment wall samples keep the run-wall tail honest and
    /// give warm starts their resume points. `None` disables sharding.
    pub shard_ops: Option<u64>,
    /// Warm-start snapshot directory (see [`crate::snapstore`]): runs
    /// resume from their latest stored shard boundary and store new
    /// boundaries as they pass. `None` (the default, and what `repro`
    /// uses) runs everything cold.
    pub warm_dir: Option<std::path::PathBuf>,
    /// Simulator configuration.
    pub sim: SimConfig,
}

impl RunConfig {
    /// The full evaluation configuration (600 k instructions per run).
    pub fn full() -> Self {
        RunConfig {
            ops: 600_000,
            seed: 1,
            traces: false,
            pid_interval: 10_000,
            q_ref_scale: 1.0,
            shard_ops: Some(600_000),
            warm_dir: None,
            sim: SimConfig::default(),
        }
    }

    /// A fast configuration for tests and smoke runs (40 k instructions).
    pub fn quick() -> Self {
        RunConfig {
            ops: 40_000,
            ..RunConfig::full()
        }
    }

    /// Overrides the instruction count.
    pub fn with_ops(mut self, ops: u64) -> Self {
        assert!(ops > 0, "runs need at least one instruction");
        self.ops = ops;
        self
    }

    /// Enables trace recording.
    pub fn with_traces(mut self) -> Self {
        self.traces = true;
        self
    }

    /// Overrides the shard length (`0` disables sharding). Reports are
    /// byte-identical for every setting; see [`RunConfig::shard_ops`].
    pub fn with_shard_ops(mut self, shard_ops: u64) -> Self {
        self.shard_ops = if shard_ops == 0 {
            None
        } else {
            Some(shard_ops)
        };
        self
    }
}

/// Builds the controller for `scheme` on `domain` under `cfg`.
pub fn controller_for(
    scheme: Scheme,
    domain: DomainId,
    cfg: &RunConfig,
) -> Option<Box<dyn DvfsController>> {
    match scheme {
        Scheme::Baseline => None,
        Scheme::Adaptive => {
            let base = AdaptiveConfig::for_domain(domain);
            let q_ref = base.q_ref * cfg.q_ref_scale;
            Some(Box::new(AdaptiveDvfsController::new(
                base.with_q_ref(q_ref),
            )))
        }
        Scheme::Pid => Some(Box::new(PidController::new(
            PidConfig::for_domain(domain).with_interval(cfg.pid_interval),
        ))),
        Scheme::AttackDecay => Some(Box::new(AttackDecayController::for_domain(domain))),
        Scheme::IntegralGain => Some(Box::new(IntegralGainController::for_domain(domain))),
        Scheme::FeedbackDvs => Some(Box::new(FeedbackDvsController::for_domain(domain))),
    }
}

/// Runs `benchmark` under `scheme`.
///
/// Returns a typed [`RunError`] instead of panicking: unknown benchmarks
/// are [`RunError::Workload`], structurally invalid configurations are
/// [`RunError::Config`], and a run tripping the livelock guard is
/// [`RunError::Diverged`].
pub fn run(benchmark: &str, scheme: Scheme, cfg: &RunConfig) -> Result<SimResult, RunError> {
    run_traced(benchmark, scheme, cfg, &mut NullSink)
}

/// Runs `benchmark` under `scheme`, streaming observability events into
/// `sink`. Bit-identical to [`run`] for any sink, any `shard_ops`, and
/// warm or cold start (the shard-equivalence invariant).
pub fn run_traced(
    benchmark: &str,
    scheme: Scheme,
    cfg: &RunConfig,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, RunError> {
    registry::by_name(benchmark)
        .ok_or_else(|| RunError::Workload(format!("unknown benchmark {benchmark}")))?;
    let store = match &cfg.warm_dir {
        Some(dir) => Some(SnapStore::open(dir)?),
        None => None,
    };
    let warm_key = warm_key(benchmark, scheme, cfg);
    run_sharded(
        cfg.shard_ops,
        store.as_ref().map(|s| (s, warm_key.as_str())),
        || build_machine(benchmark, scheme, cfg),
        sink,
    )
}

/// Builds the machine for one (benchmark, scheme, config) run — the
/// construction both [`run_traced`] and episode replay share, so a
/// replayed segment runs on exactly the machine the recording did.
pub fn build_machine(
    benchmark: &str,
    scheme: Scheme,
    cfg: &RunConfig,
) -> Result<Machine<TraceGenerator>, RunError> {
    let spec = registry::by_name(benchmark)
        .ok_or_else(|| RunError::Workload(format!("unknown benchmark {benchmark}")))?;
    let mut sim = cfg.sim.clone();
    if cfg.traces {
        sim = sim.with_traces();
    }
    let trace = TraceGenerator::try_new(&spec, cfg.ops, cfg.seed).map_err(RunError::Workload)?;
    let mut machine = Machine::try_new(sim, trace)?;
    for &d in &DomainId::BACKEND {
        if let Some(c) = controller_for(scheme, d, cfg) {
            machine = machine.with_controller(d, c);
        }
    }
    Ok(machine)
}

/// The warm-store identity of one run: every knob that shapes the
/// result. `shard_ops` is deliberately absent (it cannot change bytes)
/// and `warm_dir` is the store itself.
fn warm_key(benchmark: &str, scheme: Scheme, cfg: &RunConfig) -> String {
    format!(
        "{benchmark}|{}|ops={}|seed={}|traces={}|pid={}|qref={}|{:?}",
        scheme.name(),
        cfg.ops,
        cfg.seed,
        cfg.traces,
        cfg.pid_interval,
        cfg.q_ref_scale,
        cfg.sim
    )
}

thread_local! {
    /// Per-segment wall samples (µs) of the run currently executing on
    /// this thread, filled by [`run_sharded`] and drained by the
    /// [`RunSet`] into its wall-time histogram. Sharding thus turns one
    /// long wall sample into one per segment — the p99 the benchmark
    /// gate watches measures *scheduling granules*, which is what a core
    /// is actually blocked on.
    static SEGMENT_WALLS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Records one completed segment's wall time.
fn record_segment(start: Instant) {
    let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    SEGMENT_WALLS.with(|w| w.borrow_mut().push(us));
}

/// Runs a machine to completion in `shard_ops`-instruction segments,
/// round-tripping the full engine state through a serialized snapshot at
/// every boundary. The result and the event stream written to `sink` are
/// byte-identical to an uninterrupted run.
///
/// `build` constructs the machine fresh (same configuration, same
/// controllers); each boundary snapshot restores into a *new* machine
/// from `build`, which is exactly the restore contract the engine
/// documents — and exactly what a warm start across processes does.
/// With `warm` set, the run first tries to resume from the store's
/// latest boundary for its key and saves each boundary it passes; warm
/// resume is skipped when `sink` is live, since events before the resume
/// point would be missing from the stream.
pub fn run_sharded<T, F>(
    shard_ops: Option<u64>,
    warm: Option<(&SnapStore, &str)>,
    build: F,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, RunError>
where
    T: Iterator<Item = MicroOp> + SnapshotSource,
    F: Fn() -> Result<Machine<T>, RunError>,
{
    let Some(shard) = shard_ops.filter(|&s| s > 0) else {
        let start = Instant::now();
        let result = build()?.try_run_traced(sink)?;
        record_segment(start);
        return Ok(result);
    };
    let mut machine = build()?;
    if let Some((store, key)) = warm {
        if !sink.enabled() {
            if let Some(bytes) = store.load(key) {
                // A snapshot that fails the engine's framing checks is
                // stale state on disk, not a caller error: start cold.
                if machine.restore(&bytes).is_err() {
                    machine = build()?;
                }
            }
        }
    }
    loop {
        let start = Instant::now();
        let boundary = machine.retired() + shard;
        if machine.try_advance_traced(boundary, sink)? {
            let result = machine.finish_traced(sink);
            record_segment(start);
            return Ok(result);
        }
        let snapshot = machine.snapshot();
        // Offer the boundary snapshot to the sink as a replay anchor —
        // a no-op for every sink that doesn't build a seekable record.
        sink.record_anchor(machine.retired(), &snapshot);
        if let Some((store, key)) = warm {
            if !sink.enabled() {
                // Best-effort: a full disk must not fail the run.
                let _ = store.save(key, &snapshot);
            }
        }
        machine = build()?;
        machine.restore(&snapshot).map_err(|e| {
            RunError::Config(format!("shard-boundary snapshot failed to restore: {e}"))
        })?;
        record_segment(start);
    }
}

/// Counters accumulated by a [`RunSet`] — the raw material for the
/// machine-readable benchmark report (`repro --bench-out`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Simulations actually executed (cache hits excluded).
    pub runs: u64,
    /// Dynamic instructions simulated across those runs.
    pub instructions: u64,
    /// Baseline lookups issued against the memo cache (hits *and* the
    /// one compute per key). Counted per request rather than per hit so
    /// the number is deterministic under concurrent experiments — which
    /// requester pays the compute is a scheduling race, how many ask is
    /// not.
    pub baseline_requests: u64,
    /// Scheduler events dispatched across those runs (see
    /// [`Metrics::events_processed`]).
    pub events_processed: u64,
    /// Clock edges and sampling periods absorbed by steady-state replay
    /// or sample batching (see [`Metrics::cycles_skipped`]).
    pub cycles_skipped: u64,
}

/// Per-experiment attribution: everything one tag's runs consumed, kept
/// separately from the global counters so concurrent experiments report
/// honest per-record numbers (see [`RunSet::with_tag`]).
#[derive(Debug, Clone, Default)]
pub struct ExpStats {
    /// Simulations executed under this tag.
    pub runs: u64,
    /// Dynamic instructions simulated under this tag.
    pub instructions: u64,
    /// Baseline lookups issued from under this tag. The memoized compute
    /// itself is charged globally only (whoever loses the race would
    /// otherwise inflate one arbitrary experiment).
    pub baseline_requests: u64,
    /// Scheduler events dispatched under this tag.
    pub events_processed: u64,
    /// Clock edges absorbed by steady-state replay under this tag.
    pub cycles_skipped: u64,
    /// Total simulation compute under this tag, µs — the sum over
    /// segments, which under work stealing is the honest "how much
    /// machine time did this experiment cost" (driver-observed elapsed
    /// time includes other experiments' runs interleaving).
    pub compute_us: u64,
    /// Per-segment wall samples, µs (see [`run_sharded`]).
    pub wall_samples_us: Vec<u64>,
}

impl ExpStats {
    /// Total simulation compute in seconds.
    pub fn wall_s(&self) -> f64 {
        self.compute_us as f64 / 1e6
    }

    /// Median per-segment wall time, seconds.
    pub fn run_wall_p50_s(&self) -> f64 {
        percentile_us(&self.wall_samples_us, 50.0)
    }

    /// 99th-percentile per-segment wall time, seconds.
    pub fn run_wall_p99_s(&self) -> f64 {
        percentile_us(&self.wall_samples_us, 99.0)
    }
}

/// Nearest-rank percentile of µs samples, in seconds (0.0 when empty).
fn percentile_us(samples: &[u64], pct: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / 1e6
}

/// Controller-activity counters aggregated over every simulation a
/// [`RunSet`] executed, per backend domain (0 = INT, 1 = FP, 2 = LS).
///
/// This is the run-level summary of the observability layer: how often
/// the time-delay relays fired, how many frequency steps resulted, and —
/// the paper's central quantity — the mean reaction time from deviation
/// onset to the first answering frequency step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerActivity {
    /// Time-delay relay arms.
    pub relay_arms: [u64; 3],
    /// Time-delay relay firings.
    pub relay_fires: [u64; 3],
    /// Time-delay relay resets (noise filtered, flipped, cancelled or
    /// acted).
    pub relay_resets: [u64; 3],
    /// Upward frequency steps issued.
    pub freq_steps_up: [u64; 3],
    /// Downward frequency steps issued.
    pub freq_steps_down: [u64; 3],
    /// Sum of deviation-onset→frequency-step reaction times, ps.
    pub reaction_sum_ps: [u64; 3],
    /// Reaction times accumulated.
    pub reaction_count: [u64; 3],
    /// Enqueues delayed past the consumer's next edge by the
    /// synchronization window.
    pub sync_enqueues: [u64; 3],
    /// Local cycles settled at the minimum operating point.
    pub fmin_cycles: [u64; 3],
    /// Local cycles settled at the maximum operating point.
    pub fmax_cycles: [u64; 3],
    /// Regulator slew time, ps.
    pub transition_time_ps: [u64; 3],
}

impl ControllerActivity {
    /// Backend-domain display names, indexed like the counter arrays.
    pub const DOMAINS: [&'static str; 3] = ["INT", "FP", "LS"];

    /// Folds another aggregate into this one (used by the service to
    /// accumulate per-request run sets into a process-wide total).
    pub fn merge(&mut self, other: &ControllerActivity) {
        for i in 0..3 {
            self.relay_arms[i] += other.relay_arms[i];
            self.relay_fires[i] += other.relay_fires[i];
            self.relay_resets[i] += other.relay_resets[i];
            self.freq_steps_up[i] += other.freq_steps_up[i];
            self.freq_steps_down[i] += other.freq_steps_down[i];
            self.reaction_sum_ps[i] += other.reaction_sum_ps[i];
            self.reaction_count[i] += other.reaction_count[i];
            self.sync_enqueues[i] += other.sync_enqueues[i];
            self.fmin_cycles[i] += other.fmin_cycles[i];
            self.fmax_cycles[i] += other.fmax_cycles[i];
            self.transition_time_ps[i] += other.transition_time_ps[i];
        }
    }

    /// Renders the per-domain counters as a JSON array, one object per
    /// backend domain — the shape embedded in `--bench-out` records and
    /// in the service's `/metrics` response.
    pub fn to_json(&self) -> String {
        fn opt(x: Option<f64>) -> String {
            match x {
                Some(v) if v.is_finite() => format!("{v:.3}"),
                _ => "null".to_string(),
            }
        }
        let per_domain: Vec<String> = (0..3)
            .map(|i| {
                format!(
                    "    {{\"domain\": \"{}\", \"relay_arms\": {}, \"relay_fires\": {}, \
                     \"relay_resets\": {}, \"freq_steps_up\": {}, \"freq_steps_down\": {}, \
                     \"mean_reaction_ns\": {}, \"sync_enqueues\": {}, \"fmin_cycles\": {}, \
                     \"fmax_cycles\": {}, \"transition_time_ps\": {}}}",
                    Self::DOMAINS[i],
                    self.relay_arms[i],
                    self.relay_fires[i],
                    self.relay_resets[i],
                    self.freq_steps_up[i],
                    self.freq_steps_down[i],
                    opt(self.mean_reaction_time_ns(i)),
                    self.sync_enqueues[i],
                    self.fmin_cycles[i],
                    self.fmax_cycles[i],
                    self.transition_time_ps[i],
                )
            })
            .collect();
        format!("[\n{}\n  ]", per_domain.join(",\n"))
    }

    /// Folds one finished run's metrics into the aggregate.
    pub fn absorb(&mut self, m: &Metrics) {
        for i in 0..3 {
            self.relay_arms[i] += m.relay_arms[i];
            self.relay_fires[i] += m.relay_fires[i];
            self.relay_resets[i] += m.relay_resets[i];
            self.freq_steps_up[i] += m.freq_steps_up[i];
            self.freq_steps_down[i] += m.freq_steps_down[i];
            self.reaction_sum_ps[i] += m.reaction_sum_ps[i];
            self.reaction_count[i] += m.reaction_count[i];
            self.sync_enqueues[i] += m.sync_enqueues[i];
            self.fmin_cycles[i] += m.fmin_cycles[i];
            self.fmax_cycles[i] += m.fmax_cycles[i];
            self.transition_time_ps[i] += m.transition_time_ps[i];
        }
    }

    /// Total frequency steps (both directions) for backend domain `idx`.
    pub fn freq_steps(&self, idx: usize) -> u64 {
        self.freq_steps_up[idx] + self.freq_steps_down[idx]
    }

    /// Mean reaction time for backend domain `idx`, in nanoseconds, or
    /// `None` if no reaction completed.
    pub fn mean_reaction_time_ns(&self, idx: usize) -> Option<f64> {
        if self.reaction_count[idx] == 0 {
            None
        } else {
            Some(self.reaction_sum_ps[idx] as f64 / self.reaction_count[idx] as f64 / 1000.0)
        }
    }
}

/// One executed simulation's event stream, tagged with its run label.
pub type LabeledTrace = (String, Vec<TraceEvent>);

/// The flight recorder's in-memory sink: collects the event stream like a
/// [`VecSink`] *and* captures the shard-boundary snapshots
/// [`run_sharded`] offers through [`TraceSink::record_anchor`], each
/// pinned to its position in the event stream — the raw material for a
/// seekable `.mcdt` recording.
#[derive(Debug, Default)]
pub struct RecorderSink {
    events: Vec<TraceEvent>,
    anchors: Vec<Anchor>,
}

impl RecorderSink {
    /// An empty recorder.
    pub fn new() -> Self {
        RecorderSink::default()
    }

    /// Consumes the recorder, returning events and anchors.
    pub fn into_parts(self) -> (Vec<TraceEvent>, Vec<Anchor>) {
        (self.events, self.anchors)
    }
}

impl TraceSink for RecorderSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }

    fn record_anchor(&mut self, retired: u64, snapshot: &[u8]) {
        self.anchors.push(Anchor {
            event_index: self.events.len() as u64,
            retired,
            snapshot: snapshot.to_vec(),
        });
    }
}

/// A live observer of simulation events, consulted *per event* while a
/// run executes — unlike [`RunSet::with_tracing`], which collects the
/// whole stream for after-the-fact draining.
///
/// [`EventTap::wants`] is checked before each event is forwarded, so an
/// implementation backed by a subscriber count pays one atomic load per
/// event when nobody is listening and can gain/lose listeners mid-run
/// (this is how `mcd-serve` streams controller activity to HTTP clients
/// while the simulation is in flight). Taps observe only: report bytes
/// are identical with or without one attached, exactly as for sinks
/// (the trace_noninterference invariant).
pub trait EventTap: Send + Sync {
    /// Whether any listener currently wants events from the run with
    /// this label. Called per event; keep it cheap.
    fn wants(&self, label: &str) -> bool;
    /// Delivers one event from the labeled run.
    fn record(&self, label: &str, event: &TraceEvent);
}

/// Wraps the run's chosen sink so a tap sees every event the engine
/// emits, without disturbing what the sink itself collects.
struct TapSink<'a, S: TraceSink> {
    inner: &'a mut S,
    tap: &'a dyn EventTap,
    label: &'a str,
}

impl<S: TraceSink> TraceSink for TapSink<'_, S> {
    fn enabled(&self) -> bool {
        // The engine checks this before *building* each event, so the
        // zero-cost NullSink path survives: with no listeners and a
        // disabled inner sink, event construction is still skipped.
        self.inner.enabled() || self.tap.wants(self.label)
    }

    fn record(&mut self, event: &TraceEvent) {
        if self.tap.wants(self.label) {
            self.tap.record(self.label, event);
        }
        if self.inner.enabled() {
            self.inner.record(event);
        }
    }

    fn record_anchor(&mut self, retired: u64, snapshot: &[u8]) {
        // Taps are per-event observers; anchors go to the sink only.
        self.inner.record_anchor(retired, snapshot);
    }
}

/// [`std::fmt::Debug`]-friendly holder for the optional tap.
struct TapSlot(Option<Arc<dyn EventTap>>);

impl std::fmt::Debug for TapSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("EventTap(attached)"),
            None => f.write_str("EventTap(none)"),
        }
    }
}

/// One memoized baseline slot: filled exactly once, shared by every
/// requester, and remembering failure as faithfully as success.
type BaselineSlot = Arc<OnceLock<Result<Arc<SimResult>, RunError>>>;

/// A family of simulation runs sharing a worker pool and a memoized
/// full-speed-baseline cache.
///
/// Every figure/table normalizes against the same per-benchmark baseline
/// run; without memoization `repro all` re-simulates those baselines for
/// fig9, fig10, fig11, table3, and each ablation. A `RunSet` computes
/// each distinct baseline once (keyed by everything that can change its
/// result) and hands out shared copies.
///
/// Each simulation stays single-threaded and deterministic; the set
/// fans independent runs across one process-wide [`StealPool`] of `jobs`
/// workers via [`RunSet::par`], returning results in input order, so
/// reports are byte-identical whatever the worker count. Work stealing
/// is run-granular: every experiment's runs land in one shared queue, so
/// a long tail run never strands the other cores, and concurrent
/// experiments never oversubscribe the machine.
#[derive(Debug)]
pub struct RunSet {
    jobs: usize,
    pool: StealPool,
    baselines: Mutex<HashMap<String, BaselineSlot>>,
    runs: AtomicU64,
    instructions: AtomicU64,
    baseline_requests: AtomicU64,
    events_processed: AtomicU64,
    cycles_skipped: AtomicU64,
    /// Per-experiment attribution, keyed by the tag installed with
    /// [`RunSet::with_tag`].
    per_tag: Mutex<HashMap<&'static str, ExpStats>>,
    activity: Mutex<ControllerActivity>,
    /// When tracing is on, each executed simulation's full recording
    /// (labeled event stream + shard-boundary anchors) lands here
    /// (`None` = tracing disabled, simulations run through the
    /// zero-cost [`NullSink`]).
    tracing: Option<Mutex<Vec<RunRecording>>>,
    /// Replay specs for runs the set knows how to rebuild from scratch
    /// (registry benchmark + named scheme + config), keyed by run label;
    /// filled only while tracing so `drain_recordings` can attach them.
    specs: Mutex<HashMap<String, String>>,
    /// When telemetry is on, per-domain reaction-time and occupancy
    /// distributions accumulate here via a [`TelemetrySink`] wrapped
    /// around each run's sink (`None` = runs keep the zero-cost
    /// [`NullSink`] path).
    telemetry: Option<SimTelemetry>,
    /// Wall time of every executed simulation, microseconds. Always on:
    /// one `Instant` pair per run, never rendered into report bytes.
    wall_us: Histogram,
    /// Phase profiler (disabled by default; `repro profile` enables it).
    profiler: Profiler,
    /// Optional live event observer (see [`EventTap`]); `None` keeps
    /// every run on the exact pre-tap sink path.
    tap: TapSlot,
}

static GLOBAL_RUN_SET: OnceLock<RunSet> = OnceLock::new();

impl RunSet {
    /// Creates a run set with `jobs` worker threads (1 = fully serial),
    /// tracing disabled.
    pub fn new(jobs: usize) -> Self {
        RunSet {
            jobs: jobs.max(1),
            pool: StealPool::new(jobs.max(1)),
            baselines: Mutex::new(HashMap::new()),
            runs: AtomicU64::new(0),
            instructions: AtomicU64::new(0),
            baseline_requests: AtomicU64::new(0),
            events_processed: AtomicU64::new(0),
            cycles_skipped: AtomicU64::new(0),
            per_tag: Mutex::new(HashMap::new()),
            activity: Mutex::new(ControllerActivity::default()),
            tracing: None,
            specs: Mutex::new(HashMap::new()),
            telemetry: None,
            wall_us: Histogram::new(),
            profiler: Profiler::disabled(),
            tap: TapSlot(None),
        }
    }

    /// Attaches a live event tap: every simulation this set executes
    /// offers its events to `tap`, gated per event on
    /// [`EventTap::wants`]. Report bytes are unaffected.
    pub fn with_event_tap(mut self, tap: Arc<dyn EventTap>) -> Self {
        self.tap = TapSlot(Some(tap));
        self
    }

    /// Enables event-trace collection: every simulation this set executes
    /// records its full event stream (for `repro --trace-out`).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = Some(Mutex::new(Vec::new()));
        self
    }

    /// Enables distribution telemetry: every simulation streams its
    /// events through a [`TelemetrySink`], accumulating per-domain
    /// reaction-time and queue-occupancy histograms (for
    /// `repro --bench-out` and `repro profile`).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = Some(SimTelemetry::new());
        self
    }

    /// Enables span profiling (per-phase wall time and call counts).
    pub fn with_profiling(mut self) -> Self {
        self.profiler = Profiler::enabled();
        self
    }

    /// The process-wide run set used by the `repro` binary, created on
    /// first use with one worker per available core.
    pub fn global() -> &'static RunSet {
        GLOBAL_RUN_SET.get_or_init(|| RunSet::new(crate::parallel::default_jobs()))
    }

    /// Initializes the process-wide run set with an explicit worker
    /// count and optional tracing / telemetry / profiling. A no-op if
    /// [`RunSet::global`] was already touched — call this before any
    /// experiment runs (the `repro` binary does so right after argument
    /// parsing).
    pub fn init_global(
        jobs: usize,
        tracing: bool,
        telemetry: bool,
        profiling: bool,
    ) -> &'static RunSet {
        GLOBAL_RUN_SET.get_or_init(|| {
            let mut rs = RunSet::new(jobs);
            if tracing {
                rs = rs.with_tracing();
            }
            if telemetry {
                rs = rs.with_telemetry();
            }
            if profiling {
                rs = rs.with_profiling();
            }
            rs
        })
    }

    /// The worker count this set fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RunStats {
        RunStats {
            runs: self.runs.load(Ordering::Relaxed),
            instructions: self.instructions.load(Ordering::Relaxed),
            baseline_requests: self.baseline_requests.load(Ordering::Relaxed),
            events_processed: self.events_processed.load(Ordering::Relaxed),
            cycles_skipped: self.cycles_skipped.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with `tag` installed as this thread's experiment tag:
    /// every simulation `f` starts — directly or through [`RunSet::par`],
    /// whose workers inherit the submitter's tag per stolen item — is
    /// charged to `tag` in the per-experiment attribution (see
    /// [`RunSet::tag_stats`]). The previous tag is restored even if `f`
    /// panics.
    pub fn with_tag<R>(&self, tag: &'static str, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<&'static str>);
        impl Drop for Restore {
            fn drop(&mut self) {
                steal::set_current_tag(self.0);
            }
        }
        let _restore = Restore(steal::set_current_tag(Some(tag)));
        f()
    }

    /// Clears `tag`'s attribution. The drivers call this before each
    /// attempt of an experiment so a timed-out or panicked first attempt
    /// does not double-charge the retry.
    pub fn reset_tag(&self, tag: &str) {
        self.per_tag
            .lock()
            .expect("per-tag attribution poisoned")
            .remove(tag);
    }

    /// `tag`'s attribution so far (zeroed default if it never ran).
    pub fn tag_stats(&self, tag: &str) -> ExpStats {
        self.per_tag
            .lock()
            .expect("per-tag attribution poisoned")
            .get(tag)
            .cloned()
            .unwrap_or_default()
    }

    /// Controller-activity aggregate over every simulation executed so
    /// far.
    pub fn activity(&self) -> ControllerActivity {
        *self.activity.lock().expect("activity aggregate poisoned")
    }

    /// The distribution telemetry accumulators, when enabled.
    pub fn telemetry(&self) -> Option<&SimTelemetry> {
        self.telemetry.as_ref()
    }

    /// Snapshot of the per-run wall-time histogram (microseconds).
    /// Diff snapshots taken around an experiment to attribute its runs.
    pub fn wall_snapshot(&self) -> HistogramSnapshot {
        self.wall_us.snapshot()
    }

    /// The set's phase profiler (disabled unless
    /// [`RunSet::with_profiling`] was called).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Folds a finished run into the global counters and — when a tag is
    /// installed — its experiment's attribution, along with the run's
    /// per-segment wall samples and total compute time.
    fn count(&self, result: SimResult, segments: &[u64], compute_us: u64) -> SimResult {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.instructions
            .fetch_add(result.instructions, Ordering::Relaxed);
        self.events_processed
            .fetch_add(result.metrics.events_processed, Ordering::Relaxed);
        self.cycles_skipped
            .fetch_add(result.metrics.cycles_skipped, Ordering::Relaxed);
        self.activity
            .lock()
            .expect("activity aggregate poisoned")
            .absorb(&result.metrics);
        if let Some(tag) = steal::current_tag() {
            let mut map = self.per_tag.lock().expect("per-tag attribution poisoned");
            let exp = map.entry(tag).or_default();
            exp.runs += 1;
            exp.instructions += result.instructions;
            exp.events_processed += result.metrics.events_processed;
            exp.cycles_skipped += result.metrics.cycles_skipped;
            exp.compute_us += compute_us;
            exp.wall_samples_us.extend_from_slice(segments);
        }
        result
    }

    /// Executes one simulation, routing it through the work-stealing
    /// pool when called from outside it — so `jobs` caps *every*
    /// concurrently executing simulation in the process, including ones
    /// driven directly (not via [`RunSet::par`]). On a pool worker the
    /// body runs inline.
    fn simulate(
        &self,
        label: &str,
        simulate: impl FnOnce(&mut dyn TraceSink) -> Result<SimResult, RunError> + Send,
    ) -> Result<SimResult, RunError> {
        if steal::on_worker() {
            return self.simulate_inner(label, simulate);
        }
        let simulate = Mutex::new(Some(simulate));
        let slot = Mutex::new(None);
        self.pool.scope(1, steal::current_tag(), &|_| {
            let f = simulate
                .lock()
                .expect("simulate slot poisoned")
                .take()
                .expect("single-item batch runs once");
            *slot.lock().expect("result slot poisoned") = Some(self.simulate_inner(label, f));
        });
        let result = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("pool batch completed");
        result
    }

    /// Executes one simulation through the set's sink policy: a
    /// [`NullSink`] when tracing and telemetry are both off (zero
    /// overhead), a collected [`RecorderSink`] and/or a [`TelemetrySink`]
    /// otherwise. Counts the run and its per-segment wall times on
    /// success; a failed run contributes no counters, no trace and no
    /// telemetry.
    fn simulate_inner(
        &self,
        label: &str,
        simulate: impl FnOnce(&mut dyn TraceSink) -> Result<SimResult, RunError>,
    ) -> Result<SimResult, RunError> {
        let _span = self.profiler.span("simulate");
        SEGMENT_WALLS.with(|w| w.borrow_mut().clear());
        let start = Instant::now();
        let tap = self.tap.0.as_deref();
        let collect = |collector: &Mutex<Vec<RunRecording>>, sink: RecorderSink| {
            let (events, anchors) = sink.into_parts();
            collector
                .lock()
                .expect("trace collector poisoned")
                .push(RunRecording {
                    label: label.to_string(),
                    spec: None,
                    events,
                    anchors,
                });
        };
        let result = match (&self.telemetry, &self.tracing) {
            (None, None) => Self::drive(tap, label, NullSink, simulate)?.1,
            (None, Some(collector)) => {
                let (sink, result) = Self::drive(tap, label, RecorderSink::new(), simulate)?;
                collect(collector, sink);
                result
            }
            (Some(tel), None) => {
                Self::drive(tap, label, TelemetrySink::new(tel, NullSink), simulate)?.1
            }
            (Some(tel), Some(collector)) => {
                let (sink, result) = Self::drive(
                    tap,
                    label,
                    TelemetrySink::new(tel, RecorderSink::new()),
                    simulate,
                )?;
                collect(collector, sink.into_inner());
                result
            }
        };
        let compute_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut segments = SEGMENT_WALLS.with(|w| std::mem::take(&mut *w.borrow_mut()));
        if segments.is_empty() {
            // Custom runs that bypass `run_sharded` contribute one
            // whole-run sample, exactly the pre-sharding behavior.
            segments.push(compute_us);
        }
        for &s in &segments {
            self.wall_us.record(s);
        }
        Ok(self.count(result, &segments, compute_us))
    }

    /// Runs the simulation against `sink`, interposing the tap (when
    /// attached) so live listeners see the event stream while the sink
    /// collects exactly what it always did.
    fn drive<S: TraceSink>(
        tap: Option<&dyn EventTap>,
        label: &str,
        mut sink: S,
        simulate: impl FnOnce(&mut dyn TraceSink) -> Result<SimResult, RunError>,
    ) -> Result<(S, SimResult), RunError> {
        let result = match tap {
            Some(tap) => {
                let mut tapped = TapSink {
                    inner: &mut sink,
                    tap,
                    label,
                };
                simulate(&mut tapped)?
            }
            None => simulate(&mut sink)?,
        };
        Ok((sink, result))
    }

    /// All event traces collected so far (tracing must be enabled),
    /// sorted by label then serialized content so the output is
    /// deterministic whatever the worker scheduling.
    pub fn drain_traces(&self) -> Option<Vec<LabeledTrace>> {
        Some(
            self.drain_recordings()?
                .into_iter()
                .map(|r| (r.label, r.events))
                .collect(),
        )
    }

    /// All recordings collected so far (tracing must be enabled): labeled
    /// event streams plus their shard-boundary anchors, with replay specs
    /// attached for every run the set knows how to rebuild. Ordering is
    /// the same deterministic label-then-content sort as
    /// [`RunSet::drain_traces`], so the JSONL rendering of a `.mcdt`
    /// built from these is byte-identical to a direct `--trace-out` run.
    pub fn drain_recordings(&self) -> Option<Vec<RunRecording>> {
        let collector = self.tracing.as_ref()?;
        let mut recordings =
            std::mem::take(&mut *collector.lock().expect("trace collector poisoned"));
        let specs = self.specs.lock().expect("replay specs poisoned");
        for rec in &mut recordings {
            rec.spec = specs.get(&rec.label).cloned();
        }
        drop(specs);
        recordings.sort_by_cached_key(|rec| {
            let body: String = rec.events.iter().map(TraceEvent::to_json).collect();
            (rec.label.clone(), body)
        });
        Some(recordings)
    }

    /// Remembers how to rebuild a run from scratch, so its recording
    /// carries a replay spec. Only meaningful while tracing.
    fn register_spec(&self, label: &str, benchmark: &str, scheme: Scheme, cfg: &RunConfig) {
        if self.tracing.is_none() {
            return;
        }
        self.specs
            .lock()
            .expect("replay specs poisoned")
            .entry(label.to_string())
            .or_insert_with(|| crate::replay::replay_spec(benchmark, scheme, cfg));
    }

    /// Everything that can change a *baseline* run's result. The
    /// controller-only knobs (`pid_interval`, `q_ref_scale`) are
    /// deliberately absent: the baseline attaches no controller, so
    /// interval and q_ref sweeps all share one baseline per benchmark.
    fn baseline_key(benchmark: &str, cfg: &RunConfig) -> String {
        format!(
            "{benchmark}|{}|{}|{}|{:?}",
            cfg.ops, cfg.seed, cfg.traces, cfg.sim
        )
    }

    /// A stable label for one (benchmark, scheme) run's event trace.
    fn run_label(benchmark: &str, scheme: Scheme, cfg: &RunConfig) -> String {
        format!(
            "{benchmark}|{}|ops={}|seed={}|pid={}|qref={}",
            scheme.name(),
            cfg.ops,
            cfg.seed,
            cfg.pid_interval,
            cfg.q_ref_scale
        )
    }

    /// The full-speed baseline for `benchmark` under `cfg`, memoized.
    ///
    /// Concurrent requests for the same key simulate it exactly once
    /// (later arrivals block on the in-flight computation). A failed
    /// baseline is memoized too — the failure is deterministic, so every
    /// requester sees the same typed error without re-simulating.
    ///
    /// Every call counts one `baseline_request`, globally and against
    /// the caller's tag; the memoized compute itself is charged to the
    /// global counters only — *which* requester loses the race and pays
    /// is a scheduling accident, so attributing it to that requester's
    /// experiment would make per-record numbers nondeterministic.
    pub fn baseline(&self, benchmark: &str, cfg: &RunConfig) -> Result<Arc<SimResult>, RunError> {
        self.baseline_requests.fetch_add(1, Ordering::Relaxed);
        if let Some(tag) = steal::current_tag() {
            self.per_tag
                .lock()
                .expect("per-tag attribution poisoned")
                .entry(tag)
                .or_default()
                .baseline_requests += 1;
        }
        let cell = {
            let mut map = self.baselines.lock().expect("baseline cache poisoned");
            map.entry(Self::baseline_key(benchmark, cfg))
                .or_default()
                .clone()
        };
        cell.get_or_init(|| {
            struct Restore(Option<&'static str>);
            impl Drop for Restore {
                fn drop(&mut self) {
                    steal::set_current_tag(self.0);
                }
            }
            let _untagged = Restore(steal::set_current_tag(None));
            let _span = self.profiler.span("baseline");
            let label = Self::run_label(benchmark, Scheme::Baseline, cfg);
            self.register_spec(&label, benchmark, Scheme::Baseline, cfg);
            self.simulate(&label, |sink| {
                run_traced(benchmark, Scheme::Baseline, cfg, sink)
            })
            .map(Arc::new)
        })
        .clone()
    }

    /// Runs `benchmark` under `scheme`, counting it toward the set's
    /// statistics. Baseline requests are answered from the memo cache.
    pub fn run(
        &self,
        benchmark: &str,
        scheme: Scheme,
        cfg: &RunConfig,
    ) -> Result<SimResult, RunError> {
        if scheme == Scheme::Baseline {
            return Ok((*self.baseline(benchmark, cfg)?).clone());
        }
        let label = Self::run_label(benchmark, scheme, cfg);
        self.register_spec(&label, benchmark, scheme, cfg);
        self.simulate(&label, |sink| run_traced(benchmark, scheme, cfg, sink))
    }

    /// Runs a caller-built simulation (custom controllers, synthetic
    /// specs) so it still counts toward the set's statistics; the closure
    /// receives the sink to thread into [`Machine::try_run_traced`], and
    /// `label` names the run's event trace.
    pub fn run_custom(
        &self,
        label: &str,
        simulate: impl FnOnce(&mut dyn TraceSink) -> Result<SimResult, RunError> + Send,
    ) -> Result<SimResult, RunError> {
        self.simulate(label, simulate)
    }

    /// Maps `f` over `items` on the process-wide work-stealing pool;
    /// results are in input order, so callers are byte-identical
    /// whatever the worker count or steal order. Called from a pool
    /// worker (an item fanning out again), the batch runs inline.
    pub fn par<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let inputs: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let outputs: Vec<Mutex<Option<R>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        self.pool.scope(inputs.len(), steal::current_tag(), &|i| {
            let item = inputs[i]
                .lock()
                .expect("par input slot poisoned")
                .take()
                .expect("each index claimed once");
            *outputs[i].lock().expect("par output slot poisoned") = Some(f(item));
        });
        outputs
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("par output slot poisoned")
                    .expect("batch completed every index")
            })
            .collect()
    }
}

/// One benchmark's scheme-vs-baseline outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Fractional energy saving vs. the full-speed baseline.
    pub energy_savings: f64,
    /// Fractional slowdown vs. the baseline.
    pub perf_degradation: f64,
    /// Fractional energy-delay-product improvement vs. the baseline.
    pub edp_improvement: f64,
}

impl Outcome {
    /// Compares `result` against `baseline`.
    pub fn versus(result: &SimResult, baseline: &SimResult) -> Outcome {
        Outcome {
            energy_savings: result.energy_savings_vs(baseline),
            perf_degradation: result.perf_degradation_vs(baseline),
            edp_improvement: result.edp_improvement_vs(baseline),
        }
    }

    /// Element-wise mean over a set of outcomes.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn mean(outcomes: &[Outcome]) -> Outcome {
        assert!(!outcomes.is_empty(), "cannot average zero outcomes");
        let n = outcomes.len() as f64;
        Outcome {
            energy_savings: outcomes.iter().map(|o| o.energy_savings).sum::<f64>() / n,
            perf_degradation: outcomes.iter().map(|o| o.perf_degradation).sum::<f64>() / n,
            edp_improvement: outcomes.iter().map(|o| o.edp_improvement).sum::<f64>() / n,
        }
    }
}

/// Formats a fraction as a signed percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_run_retires_all_instructions() {
        let cfg = RunConfig::quick().with_ops(5_000);
        let r = run("adpcm_encode", Scheme::Baseline, &cfg).expect("valid run");
        assert_eq!(r.instructions, 5_000);
    }

    #[test]
    fn every_scheme_builds_controllers() {
        let cfg = RunConfig::quick();
        for scheme in Scheme::BAKEOFF {
            for &d in &DomainId::BACKEND {
                assert!(controller_for(scheme, d, &cfg).is_some(), "{scheme:?} {d}");
            }
            assert!(!scheme.name().is_empty());
        }
        for scheme in Scheme::CONTROLLED {
            assert!(Scheme::BAKEOFF.contains(&scheme), "{scheme:?}");
        }
        assert!(controller_for(Scheme::Baseline, DomainId::Int, &cfg).is_none());
    }

    #[test]
    fn outcome_mean_averages() {
        let a = Outcome {
            energy_savings: 0.1,
            perf_degradation: 0.02,
            edp_improvement: 0.08,
        };
        let b = Outcome {
            energy_savings: 0.3,
            perf_degradation: 0.04,
            edp_improvement: 0.26,
        };
        let m = Outcome::mean(&[a, b]);
        assert!((m.energy_savings - 0.2).abs() < 1e-12);
        assert!((m.perf_degradation - 0.03).abs() < 1e-12);
    }

    #[test]
    fn pct_formats_signed() {
        assert_eq!(pct(0.093), "+9.3%");
        assert_eq!(pct(-0.03), "-3.0%");
    }

    #[test]
    fn unknown_benchmark_is_a_workload_error() {
        let err = run("nope", Scheme::Baseline, &RunConfig::quick()).unwrap_err();
        assert_eq!(err, RunError::Workload("unknown benchmark nope".into()));
        assert!(!err.is_transient());
    }

    #[test]
    fn invalid_config_is_a_config_error() {
        let mut cfg = RunConfig::quick();
        cfg.sim.rob_size = 0;
        let err = run("adpcm_encode", Scheme::Baseline, &cfg).unwrap_err();
        assert_eq!(err.kind(), "config-invalid");
    }

    #[test]
    fn telemetry_distributions_match_the_counters_exactly() {
        let rs = RunSet::new(1).with_telemetry();
        let cfg = RunConfig::quick().with_ops(20_000);
        rs.run("adpcm_encode", Scheme::Adaptive, &cfg).expect("run");
        let activity = rs.activity();
        let tel = rs.telemetry().expect("telemetry enabled");
        let mut reactions = 0;
        for i in 0..3 {
            // The sink replays the engine's onset rule, so the
            // distribution's count and sum equal the always-on counters
            // — not just approximately, bit for bit.
            let snap = tel.reaction_ps[i].snapshot();
            assert_eq!(snap.count(), activity.reaction_count[i], "domain {i}");
            assert_eq!(snap.sum(), activity.reaction_sum_ps[i], "domain {i}");
            reactions += snap.count();
        }
        assert!(reactions > 0, "the adaptive run must react at least once");
        assert!(tel.occupancy.iter().any(|h| !h.snapshot().is_empty()));
        assert_eq!(rs.wall_snapshot().count(), rs.stats().runs);
    }

    #[test]
    fn failed_baseline_is_memoized_without_rerunning() {
        let rs = RunSet::new(1);
        let mut cfg = RunConfig::quick();
        cfg.sim.rob_size = 0;
        let first = rs.baseline("adpcm_encode", &cfg).unwrap_err();
        let second = rs.baseline("adpcm_encode", &cfg).unwrap_err();
        assert_eq!(first, second);
        assert_eq!(
            rs.stats().baseline_requests,
            2,
            "every lookup counts, memoized or not"
        );
        assert_eq!(rs.stats().runs, 0, "failed runs are not counted");
    }

    /// Bit-stable fingerprint of a result: `Debug` renders `f64` as its
    /// shortest round-trip form, so equal strings mean equal bits.
    fn fingerprint(r: &SimResult) -> String {
        format!("{r:?}")
    }

    #[test]
    fn sharded_run_is_byte_identical_to_unsharded() {
        let base = RunConfig::quick().with_ops(30_000).with_shard_ops(0);
        let whole = run("gzip", Scheme::Adaptive, &base).expect("unsharded");
        for shard in [7_000, 10_000, 30_000] {
            let sharded = run(
                "gzip",
                Scheme::Adaptive,
                &base.clone().with_shard_ops(shard),
            )
            .expect("sharded");
            assert_eq!(
                fingerprint(&whole),
                fingerprint(&sharded),
                "shard_ops={shard} must not change the result"
            );
        }
    }

    #[test]
    fn sharded_trace_stream_stitches_byte_identically() {
        let base = RunConfig::quick().with_ops(24_000).with_traces();
        let render = |cfg: &RunConfig| {
            let mut sink = VecSink::new();
            run_traced("adpcm_encode", Scheme::Pid, cfg, &mut sink).expect("run");
            sink.into_events()
                .iter()
                .map(TraceEvent::to_json)
                .collect::<String>()
        };
        assert_eq!(
            render(&base.clone().with_shard_ops(0)),
            render(&base.clone().with_shard_ops(5_000)),
            "the stitched event stream must equal the uninterrupted one"
        );
    }

    #[test]
    fn warm_start_resumes_byte_identically_and_rejects_stale_code() {
        let dir = std::env::temp_dir().join(format!("mcd-warm-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cold_cfg = RunConfig::quick().with_ops(20_000).with_shard_ops(6_000);
        let cold = run("swim", Scheme::Adaptive, &cold_cfg).expect("cold");
        let mut warm_cfg = cold_cfg.clone();
        warm_cfg.warm_dir = Some(dir.clone());
        // First warm run populates the store; second resumes from the
        // last boundary. Both must match the cold run exactly.
        let first = run("swim", Scheme::Adaptive, &warm_cfg).expect("populate");
        let second = run("swim", Scheme::Adaptive, &warm_cfg).expect("resume");
        assert_eq!(fingerprint(&cold), fingerprint(&first));
        assert_eq!(fingerprint(&cold), fingerprint(&second));
        assert!(
            std::fs::read_dir(&dir).expect("store dir").next().is_some(),
            "the store must hold at least one boundary snapshot"
        );
        // A store written by a different binary is ignored, not trusted:
        // corrupt every entry's fingerprint line and re-run.
        for entry in std::fs::read_dir(&dir).expect("store dir") {
            let path = entry.expect("entry").path();
            let bytes = std::fs::read(&path).expect("read");
            // Header layout: "msnap 1\n<code>\n<key>\n" — swap line two.
            let nl =
                |from: usize| from + bytes[from..].iter().position(|&b| b == b'\n').unwrap() + 1;
            let (code_start, code_end) = (nl(0), nl(nl(0)));
            let mut mangled = bytes[..code_start].to_vec();
            mangled.extend_from_slice(b"stale-code\n");
            mangled.extend_from_slice(&bytes[code_end..]);
            std::fs::write(&path, mangled).expect("mangle");
        }
        let stale = run("swim", Scheme::Adaptive, &warm_cfg).expect("stale store");
        assert_eq!(
            fingerprint(&cold),
            fingerprint(&stale),
            "a stale store must fall back to a byte-identical cold run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tags_attribute_runs_to_their_experiment() {
        let rs = RunSet::new(2);
        let cfg = RunConfig::quick().with_ops(10_000);
        rs.with_tag("exp-a", || {
            rs.baseline("adpcm_encode", &cfg).expect("baseline");
            rs.par(vec![0u32, 1], |_| {
                rs.run("adpcm_encode", Scheme::Adaptive, &cfg).expect("run");
            });
        });
        rs.with_tag("exp-b", || {
            rs.run("gzip", Scheme::Pid, &cfg).expect("run");
        });
        let a = rs.tag_stats("exp-a");
        let b = rs.tag_stats("exp-b");
        assert_eq!(a.runs, 2, "workers inherit the submitter's tag");
        assert_eq!(a.baseline_requests, 1);
        assert_eq!(a.instructions, 20_000);
        assert_eq!(b.runs, 1);
        assert_eq!(b.baseline_requests, 0);
        assert!(a.compute_us > 0 && !a.wall_samples_us.is_empty());
        // The baseline *compute* is charged globally, not to exp-a.
        assert_eq!(rs.stats().runs, 4);
        let global_instr = rs.stats().instructions;
        assert_eq!(global_instr, 40_000);
        rs.reset_tag("exp-a");
        assert_eq!(rs.tag_stats("exp-a").runs, 0, "reset clears attribution");
        assert_eq!(rs.tag_stats("exp-b").runs, 1, "other tags untouched");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = ExpStats {
            wall_samples_us: vec![4_000_000, 1_000_000, 3_000_000, 2_000_000],
            ..ExpStats::default()
        };
        assert_eq!(stats.run_wall_p50_s(), 2.0);
        assert_eq!(stats.run_wall_p99_s(), 4.0);
        assert_eq!(ExpStats::default().run_wall_p99_s(), 0.0);
    }
}
