//! Voltage-regulator / PLL transition model.
//!
//! The paper assumes an aggressive **XScale-style** DVFS implementation: a
//! clock domain keeps executing *through* a voltage/frequency transition,
//! and the transition proceeds at a finite rate (73.3 ns/MHz frequency slew,
//! from the industrial numbers cited in Section 2). A **Transmeta-style**
//! implementation is also modeled for the design-space discussion of
//! Section 3: transitions are slower and the domain stalls until the new
//! point is reached.

use crate::types::{Energy, Frequency, TimePs, Voltage};
use crate::vf_curve::{OpIndex, VfCurve};

/// How a clock domain behaves while its operating point is changing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DvfsStyle {
    /// XScale-style: the domain executes through the transition at the
    /// (continuously moving) intermediate frequency. Fast slew rate.
    XScale,
    /// Transmeta-style: the domain is stalled for the whole transition.
    /// Slower slew rate, modeled as a multiple of the XScale rate.
    Transmeta,
}

impl DvfsStyle {
    /// Frequency slew time per MHz of change.
    ///
    /// XScale-style uses the paper's 73.3 ns/MHz; Transmeta-style is modeled
    /// 10× slower (tens of microseconds for large swings), matching the
    /// "relatively slow transition time and long processor idle time"
    /// characterization in Section 3.
    pub fn ns_per_mhz(self) -> f64 {
        match self {
            DvfsStyle::XScale => 73.3,
            DvfsStyle::Transmeta => 733.0,
        }
    }

    /// Whether the domain must stall while the transition is in flight.
    pub fn stalls_during_transition(self) -> bool {
        matches!(self, DvfsStyle::Transmeta)
    }
}

/// An in-flight voltage/frequency transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Effective frequency when the transition began.
    pub from: Frequency,
    /// Frequency being slewed toward.
    pub to: Frequency,
    /// Time the transition began.
    pub start: TimePs,
    /// Time the transition completes.
    pub end: TimePs,
}

impl Transition {
    /// Linearly interpolated frequency at `now` (clamped to the endpoints).
    pub fn frequency_at(&self, now: TimePs) -> Frequency {
        if now <= self.start {
            return self.from;
        }
        if now >= self.end {
            return self.to;
        }
        let span = (self.end - self.start).as_ps() as f64;
        let done = (now - self.start).as_ps() as f64 / span;
        let hz =
            self.from.as_hz() as f64 + (self.to.as_hz() as f64 - self.from.as_hz() as f64) * done;
        Frequency::from_hz(hz.round() as u64)
    }
}

/// Per-domain voltage regulator and PLL.
///
/// Tracks the committed operating point, slews toward retarget requests at
/// the style's rate, and accounts the (small) regulator switching energy.
///
/// ```
/// use mcd_power::{Regulator, DvfsStyle, VfCurve, OpIndex, TimePs};
///
/// let curve = VfCurve::mcd_default();
/// let mut reg = Regulator::new(curve.clone(), DvfsStyle::XScale, curve.max_index());
/// let t0 = TimePs::ZERO;
/// reg.request(OpIndex(0), t0);
/// assert!(reg.is_transitioning(TimePs::from_us(10)));
/// // Full-range swing: 750 MHz * 73.3 ns/MHz ≈ 55 us.
/// assert!(!reg.is_transitioning(TimePs::from_us(60)));
/// ```
#[derive(Debug, Clone)]
pub struct Regulator {
    curve: VfCurve,
    style: DvfsStyle,
    target: OpIndex,
    transition: Option<Transition>,
    switching_energy: Energy,
    transitions_started: u64,
    /// Slew time of every *finished* transition; the in-flight one (if
    /// any) is added by [`Regulator::total_transition_time`].
    completed_transition_time: TimePs,
    /// Effective output capacitance of the (dual-phase) regulator, used for
    /// the `½·C·|V₁²−V₀²|` switching-energy estimate. Small, per Section 3.
    vr_capacitance_farads: f64,
}

impl Regulator {
    /// Creates a regulator parked at `initial` with no transition pending.
    pub fn new(curve: VfCurve, style: DvfsStyle, initial: OpIndex) -> Self {
        assert!(
            initial.0 <= curve.max_index().0,
            "initial index out of range"
        );
        Regulator {
            curve,
            style,
            target: initial,
            transition: None,
            switching_energy: Energy::ZERO,
            transitions_started: 0,
            completed_transition_time: TimePs::ZERO,
            vr_capacitance_farads: 10e-9,
        }
    }

    /// The operating-point curve this regulator drives.
    pub fn curve(&self) -> &VfCurve {
        &self.curve
    }

    /// The DVFS style (XScale or Transmeta).
    pub fn style(&self) -> DvfsStyle {
        self.style
    }

    /// The committed target operating point.
    pub fn target(&self) -> OpIndex {
        self.target
    }

    /// Number of retarget requests that actually started a transition.
    pub fn transitions_started(&self) -> u64 {
        self.transitions_started
    }

    /// Total regulator switching energy spent so far.
    pub fn switching_energy(&self) -> Energy {
        self.switching_energy
    }

    /// Requests a move to `target`, starting (or re-aiming) a transition at
    /// `now`. Returns the completion time. Requests for the current target
    /// are no-ops and return `now`.
    ///
    /// # Panics
    ///
    /// Panics if `target` exceeds the curve's maximum index.
    pub fn request(&mut self, target: OpIndex, now: TimePs) -> TimePs {
        assert!(
            target.0 <= self.curve.max_index().0,
            "target index out of range"
        );
        if target == self.target && self.transition.is_none_or(|t| now >= t.end) {
            return now;
        }
        if target == self.target {
            // Already slewing there.
            return self.transition.expect("checked above").end;
        }
        let from = self.frequency_at(now);
        // The transition being replaced (finished or re-aimed) stops
        // contributing at `now`; bank the time it actually spent slewing.
        if let Some(t) = self.transition.take() {
            self.completed_transition_time += t.end.min(now).saturating_sub(t.start);
        }
        let to = self.curve.point(target).frequency;
        let delta_mhz = (to.as_mhz() - from.as_mhz()).abs();
        let dur_ps = delta_mhz * self.style.ns_per_mhz() * 1e3;
        let end = now.advance_f64(dur_ps);

        // Regulator switching energy: ½·C·|V₁² − V₀²|.
        let v0 = self.curve.voltage_for_frequency(from).as_volts();
        let v1 = self.curve.voltage_for_frequency(to).as_volts();
        self.switching_energy +=
            Energy::from_joules(0.5 * self.vr_capacitance_farads * (v1 * v1 - v0 * v0).abs());
        self.transitions_started += 1;
        self.target = target;
        self.transition = Some(Transition {
            from,
            to,
            start: now,
            end,
        });
        end
    }

    /// Whether a transition is still in flight at `now`.
    pub fn is_transitioning(&self, now: TimePs) -> bool {
        self.transition.is_some_and(|t| now < t.end)
    }

    /// Time the in-flight transition (if any) completes.
    pub fn transition_end(&self) -> Option<TimePs> {
        self.transition.map(|t| t.end)
    }

    /// If the style stalls during transitions, the time until which the
    /// domain must stall (when a transition is in flight at `now`).
    pub fn stall_until(&self, now: TimePs) -> Option<TimePs> {
        if self.style.stalls_during_transition() && self.is_transitioning(now) {
            self.transition.map(|t| t.end)
        } else {
            None
        }
    }

    /// Effective clock frequency at `now` (interpolated mid-transition).
    pub fn frequency_at(&self, now: TimePs) -> Frequency {
        match self.transition {
            Some(t) if now < t.end => t.frequency_at(now),
            _ => self.curve.point(self.target).frequency,
        }
    }

    /// Supply voltage at `now`. The regulator slews voltage together with
    /// frequency along the curve.
    pub fn voltage_at(&self, now: TimePs) -> Voltage {
        self.curve.voltage_for_frequency(self.frequency_at(now))
    }

    /// Time to slew one curve step — the paper's switching time `T_s` for a
    /// single triggered action (≈172 ns for the default curve, XScale).
    pub fn single_step_time(&self) -> TimePs {
        let dur_ps = self.curve.freq_step().as_mhz() * self.style.ns_per_mhz() * 1e3;
        TimePs::ZERO.advance_f64(dur_ps)
    }

    /// Total time this regulator has spent slewing between operating
    /// points as of `now` (finished transitions plus the elapsed part of
    /// an in-flight one).
    pub fn total_transition_time(&self, now: TimePs) -> TimePs {
        let in_flight = match self.transition {
            Some(t) => t.end.min(now).saturating_sub(t.start),
            None => TimePs::ZERO,
        };
        self.completed_transition_time + in_flight
    }

    /// Serializes the regulator's evolving state (target, in-flight
    /// transition, energy and slew accounting). The curve, style, and
    /// capacitance come from construction and are not written — a restore
    /// target must be built over the same configuration.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_u16(self.target.0);
        match self.transition {
            None => w.put_bool(false),
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t.from.as_hz());
                w.put_u64(t.to.as_hz());
                w.put_u64(t.start.as_ps());
                w.put_u64(t.end.as_ps());
            }
        }
        w.put_f64(self.switching_energy.as_joules());
        w.put_u64(self.transitions_started);
        w.put_u64(self.completed_transition_time.as_ps());
    }

    /// Restores state captured by [`Regulator::save_state`] into a
    /// regulator built over the same curve and style.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        let target = OpIndex(r.take_u16()?);
        if target.0 > self.curve.max_index().0 {
            return Err(mcd_snap::SnapError::Mismatch(format!(
                "regulator target {} exceeds curve maximum {}",
                target.0,
                self.curve.max_index().0
            )));
        }
        self.target = target;
        self.transition = if r.take_bool()? {
            Some(Transition {
                from: Frequency::from_hz(r.take_u64()?),
                to: Frequency::from_hz(r.take_u64()?),
                start: TimePs::new(r.take_u64()?),
                end: TimePs::new(r.take_u64()?),
            })
        } else {
            None
        };
        self.switching_energy = Energy::from_joules(r.take_f64()?);
        self.transitions_started = r.take_u64()?;
        self.completed_transition_time = TimePs::new(r.take_u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_at_max(style: DvfsStyle) -> Regulator {
        let curve = VfCurve::mcd_default();
        let max = curve.max_index();
        Regulator::new(curve, style, max)
    }

    #[test]
    fn idle_regulator_reports_target_point() {
        let r = reg_at_max(DvfsStyle::XScale);
        assert_eq!(r.frequency_at(TimePs::ZERO), Frequency::from_ghz(1.0));
        assert!(!r.is_transitioning(TimePs::ZERO));
        assert_eq!(r.transition_end(), None);
    }

    #[test]
    fn full_swing_duration_matches_slew_rate() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let end = r.request(OpIndex(0), TimePs::ZERO);
        // 750 MHz * 73.3 ns/MHz = 54_975 ns.
        assert_eq!(end.as_ps(), 54_975_000);
        assert_eq!(r.transitions_started(), 1);
    }

    #[test]
    fn frequency_interpolates_during_transition() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let end = r.request(OpIndex(0), TimePs::ZERO);
        let mid = TimePs::new(end.as_ps() / 2);
        let f = r.frequency_at(mid);
        assert!((f.as_mhz() - 625.0).abs() < 1.0, "got {f}");
        assert_eq!(r.frequency_at(end), Frequency::from_mhz(250.0));
    }

    #[test]
    fn retarget_mid_transition_starts_from_current_frequency() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let end = r.request(OpIndex(0), TimePs::ZERO);
        let mid = TimePs::new(end.as_ps() / 2);
        let f_mid = r.frequency_at(mid);
        let max = r.curve().max_index();
        let end2 = r.request(max, mid);
        // Slewing back up from ~625 MHz takes about half the full swing.
        let expect_ps = (1000.0 - f_mid.as_mhz()) * 73.3 * 1e3;
        assert!(((end2 - mid).as_ps() as f64 - expect_ps).abs() < 2e3);
        assert_eq!(r.frequency_at(end2), Frequency::from_ghz(1.0));
    }

    #[test]
    fn same_target_request_is_noop() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let max = r.curve().max_index();
        let t = TimePs::from_ns(5);
        assert_eq!(r.request(max, t), t);
        assert_eq!(r.transitions_started(), 0);
        assert_eq!(r.switching_energy(), Energy::ZERO);
    }

    #[test]
    fn duplicate_request_during_transition_returns_same_end() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let end = r.request(OpIndex(0), TimePs::ZERO);
        let again = r.request(OpIndex(0), TimePs::from_ns(100));
        assert_eq!(end, again);
        assert_eq!(r.transitions_started(), 1);
    }

    #[test]
    fn transmeta_stalls_xscale_does_not() {
        let mut x = reg_at_max(DvfsStyle::XScale);
        x.request(OpIndex(0), TimePs::ZERO);
        assert_eq!(x.stall_until(TimePs::from_ns(10)), None);

        let mut t = reg_at_max(DvfsStyle::Transmeta);
        let end = t.request(OpIndex(0), TimePs::ZERO);
        assert_eq!(t.stall_until(TimePs::from_ns(10)), Some(end));
        assert_eq!(t.stall_until(end), None);
    }

    #[test]
    fn transmeta_is_slower() {
        let mut x = reg_at_max(DvfsStyle::XScale);
        let mut t = reg_at_max(DvfsStyle::Transmeta);
        let ex = x.request(OpIndex(0), TimePs::ZERO);
        let et = t.request(OpIndex(0), TimePs::ZERO);
        assert_eq!(et.as_ps(), ex.as_ps() * 10);
    }

    #[test]
    fn switching_energy_accumulates() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        r.request(OpIndex(0), TimePs::ZERO);
        let e1 = r.switching_energy();
        assert!(e1.as_joules() > 0.0);
        // ½ · 10nF · (1.2² − 0.65²) ≈ 5.09 nJ
        assert!((e1.as_nj() - 5.0875).abs() < 0.01, "got {e1}");
    }

    #[test]
    fn transition_time_accumulates_across_retargets() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        assert_eq!(r.total_transition_time(TimePs::ZERO), TimePs::ZERO);
        let end = r.request(OpIndex(0), TimePs::ZERO);
        // Mid-flight: only the elapsed part counts.
        let mid = TimePs::new(end.as_ps() / 2);
        assert_eq!(r.total_transition_time(mid), mid);
        // Re-aim halfway: the first transition banks `mid` of slew, and
        // the new one accrues on top.
        let max = r.curve().max_index();
        let end2 = r.request(max, mid);
        assert_eq!(r.total_transition_time(mid), mid);
        let total = r.total_transition_time(end2);
        assert_eq!(total, mid + (end2 - mid));
        // After settling, time stops accruing.
        assert_eq!(r.total_transition_time(end2 + TimePs::from_us(1)), total);
    }

    /// A transition that already finished before being replaced must bank
    /// exactly its own duration — `min(end, now)` — not the full stretch
    /// up to the preempting request. Double-counting here would inflate
    /// the slew-time share reported in the energy breakdown.
    #[test]
    fn settled_then_replaced_transition_banks_only_its_own_span() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let end1 = r.request(OpIndex(0), TimePs::ZERO);
        // Sit at the settled point for a long idle gap, then re-target.
        let later = end1 + TimePs::from_us(500);
        let max = r.curve().max_index();
        let end2 = r.request(max, later);
        // The idle gap must not be attributed to slewing.
        assert_eq!(
            r.total_transition_time(later),
            end1,
            "idle time between transitions leaked into the total"
        );
        assert_eq!(r.total_transition_time(end2), end1 + (end2 - later));
    }

    /// Across an arbitrary preemption chain (mid-flight re-aims and
    /// settled re-targets mixed), the reported total equals the sum of
    /// the disjoint spans each transition was actually in flight.
    #[test]
    fn preemption_chain_total_is_the_sum_of_disjoint_spans() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let max = r.curve().max_index();
        // (target, request time as a fraction of the previous span).
        let mut expected = TimePs::ZERO;
        let mut prev_start = TimePs::ZERO;
        let mut prev_end = r.request(OpIndex(0), TimePs::ZERO);
        for (i, target) in [max, OpIndex(40), OpIndex(200), max, OpIndex(0)]
            .into_iter()
            .enumerate()
        {
            // Alternate preempting mid-flight and waiting out the slew.
            let now = if i % 2 == 0 {
                TimePs::new(prev_start.as_ps() + (prev_end - prev_start).as_ps() / 3)
            } else {
                prev_end + TimePs::from_us(7)
            };
            expected += prev_end.min(now).saturating_sub(prev_start);
            prev_start = now;
            prev_end = r.request(target, now);
        }
        expected += prev_end - prev_start;
        let settle = prev_end + TimePs::from_us(3);
        assert_eq!(r.total_transition_time(settle), expected);
        // Sanity: slew time can never exceed elapsed wall-clock.
        assert!(r.total_transition_time(settle) <= settle);
    }

    /// `total_transition_time` is non-decreasing in `now` through starts,
    /// preemptions and settles alike.
    #[test]
    fn transition_time_is_monotone_in_now() {
        let mut r = reg_at_max(DvfsStyle::XScale);
        let end1 = r.request(OpIndex(100), TimePs::ZERO);
        let mid = TimePs::new(end1.as_ps() / 2);
        let end2 = r.request(OpIndex(300), mid);
        let horizon = end2 + TimePs::from_us(5);
        let mut last = TimePs::ZERO;
        let step = horizon.as_ps() / 200;
        for k in 0..=200u64 {
            let now = TimePs::new(k * step);
            let t = r.total_transition_time(now);
            assert!(t >= last, "total went backwards at {now}");
            last = t;
        }
    }

    #[test]
    fn single_step_time_is_about_172ns() {
        let r = reg_at_max(DvfsStyle::XScale);
        let ts = r.single_step_time();
        assert!((ts.as_ns() - 171.8).abs() < 1.0, "got {ts}");
    }
}
