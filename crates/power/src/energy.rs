//! Per-domain energy accounting.
//!
//! Each simulated clock domain owns a [`DomainEnergyMeter`]; the simulator
//! charges it a cycle cost on every local clock edge and an event cost for
//! every structure access, at whatever supply voltage the domain's regulator
//! reports at that instant.

use crate::types::{Energy, Voltage};
use crate::wattch::{ActivityEvent, DomainClass, EnergyModel};

/// Coarse category an [`ActivityEvent`] is accounted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyCategory {
    /// Clock distribution and gated idle power.
    Clock,
    /// Functional-unit execution energy.
    Compute,
    /// Cache and memory hierarchy energy.
    Memory,
    /// Pipeline bookkeeping: fetch/decode/rename/dispatch/issue/commit,
    /// predictor and register-file traffic.
    Pipeline,
    /// Static (leakage) energy: proportional to time and voltage, not to
    /// activity.
    Leakage,
}

impl EnergyCategory {
    /// Every category, for iteration/reporting.
    pub const ALL: [EnergyCategory; 5] = [
        EnergyCategory::Clock,
        EnergyCategory::Compute,
        EnergyCategory::Memory,
        EnergyCategory::Pipeline,
        EnergyCategory::Leakage,
    ];

    /// The category an event belongs to.
    pub fn of(event: ActivityEvent) -> EnergyCategory {
        use ActivityEvent::*;
        match event {
            IntAlu | IntMul | FpAlu | FpMul | FpDiv => EnergyCategory::Compute,
            L1DAccess | L2Access | MemAccess => EnergyCategory::Memory,
            Fetch | BpredLookup | BpredUpdate | DecodeRename | Dispatch | Issue | RegRead
            | RegWrite | LsqAccess | Commit => EnergyCategory::Pipeline,
        }
    }
}

/// Energy totals split by [`EnergyCategory`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Clock distribution + gated idle energy.
    pub clock: Energy,
    /// Functional-unit energy.
    pub compute: Energy,
    /// Memory-hierarchy energy.
    pub memory: Energy,
    /// Pipeline bookkeeping energy.
    pub pipeline: Energy,
    /// Static (leakage) energy.
    pub leakage: Energy,
}

impl EnergyBreakdown {
    /// Sum over all categories.
    pub fn total(&self) -> Energy {
        self.clock + self.compute + self.memory + self.pipeline + self.leakage
    }

    /// Adds `e` under `category`.
    pub fn add(&mut self, category: EnergyCategory, e: Energy) {
        match category {
            EnergyCategory::Clock => self.clock += e,
            EnergyCategory::Compute => self.compute += e,
            EnergyCategory::Memory => self.memory += e,
            EnergyCategory::Pipeline => self.pipeline += e,
            EnergyCategory::Leakage => self.leakage += e,
        }
    }

    /// Element-wise sum of two breakdowns.
    pub fn merged(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            clock: self.clock + other.clock,
            compute: self.compute + other.compute,
            memory: self.memory + other.memory,
            pipeline: self.pipeline + other.pipeline,
            leakage: self.leakage + other.leakage,
        }
    }

    /// Serializes every category total bit-exactly.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        w.put_f64(self.clock.as_joules());
        w.put_f64(self.compute.as_joules());
        w.put_f64(self.memory.as_joules());
        w.put_f64(self.pipeline.as_joules());
        w.put_f64(self.leakage.as_joules());
    }

    /// Restores state captured by [`EnergyBreakdown::save_state`].
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.clock = Energy::from_joules(r.take_f64()?);
        self.compute = Energy::from_joules(r.take_f64()?);
        self.memory = Energy::from_joules(r.take_f64()?);
        self.pipeline = Energy::from_joules(r.take_f64()?);
        self.leakage = Energy::from_joules(r.take_f64()?);
        Ok(())
    }
}

/// Accumulates the energy spent by one clock domain.
///
/// ```
/// use mcd_power::{DomainEnergyMeter, EnergyModel, Voltage, ActivityEvent};
/// use mcd_power::wattch::DomainClass;
///
/// let model = EnergyModel::new(Voltage::from_volts(1.2));
/// let mut meter = DomainEnergyMeter::new(DomainClass::Integer, model);
/// let v = Voltage::from_volts(1.2);
/// meter.charge_cycle(0.5, v);
/// meter.charge_event(ActivityEvent::IntAlu, v);
/// assert!(meter.total().as_pj() > 0.0);
/// assert_eq!(meter.cycles(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DomainEnergyMeter {
    class: DomainClass,
    model: EnergyModel,
    breakdown: EnergyBreakdown,
    cycles: u64,
    events: u64,
}

impl DomainEnergyMeter {
    /// Creates a zeroed meter for a domain of class `class`.
    pub fn new(class: DomainClass, model: EnergyModel) -> Self {
        DomainEnergyMeter {
            class,
            model,
            breakdown: EnergyBreakdown::default(),
            cycles: 0,
            events: 0,
        }
    }

    /// The domain class this meter charges clock energy for.
    pub fn class(&self) -> DomainClass {
        self.class
    }

    /// The underlying energy model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Charges one local clock cycle at utilization `utilization` and
    /// voltage `v`.
    pub fn charge_cycle(&mut self, utilization: f64, v: Voltage) {
        let e = self.model.cycle_energy(self.class, utilization, v);
        self.breakdown.add(EnergyCategory::Clock, e);
        self.cycles += 1;
    }

    /// Charges one structure access at voltage `v`.
    pub fn charge_event(&mut self, event: ActivityEvent, v: Voltage) {
        let e = self.model.event_energy(event, v);
        self.breakdown.add(EnergyCategory::of(event), e);
        self.events += 1;
    }

    /// Charges static (leakage) energy directly.
    pub fn charge_leakage(&mut self, e: Energy) {
        self.breakdown.add(EnergyCategory::Leakage, e);
    }

    /// Charges `n` identical accesses at voltage `v`.
    pub fn charge_events(&mut self, event: ActivityEvent, n: u64, v: Voltage) {
        if n == 0 {
            return;
        }
        let e = self.model.event_energy(event, v).scaled(n as f64);
        self.breakdown.add(EnergyCategory::of(event), e);
        self.events += n;
    }

    /// Total energy charged so far.
    pub fn total(&self) -> Energy {
        self.breakdown.total()
    }

    /// Category breakdown of the charged energy.
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.breakdown
    }

    /// Local clock cycles charged.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Structure accesses charged.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Serializes the meter's evolving state (energy totals and counters);
    /// the class and energy model come from construction.
    pub fn save_state(&self, w: &mut mcd_snap::SnapWriter) {
        self.breakdown.save_state(w);
        w.put_u64(self.cycles);
        w.put_u64(self.events);
    }

    /// Restores state captured by [`DomainEnergyMeter::save_state`] into a
    /// meter built with the same class and model.
    pub fn load_state(&mut self, r: &mut mcd_snap::SnapReader<'_>) -> mcd_snap::SnapResult<()> {
        self.breakdown.load_state(r)?;
        self.cycles = r.take_u64()?;
        self.events = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Voltage;

    fn meter() -> DomainEnergyMeter {
        DomainEnergyMeter::new(
            DomainClass::Integer,
            EnergyModel::new(Voltage::from_volts(1.2)),
        )
    }

    #[test]
    fn categories_cover_all_events() {
        for &e in &ActivityEvent::ALL {
            // `of` is total; this is a compile-time-ish exhaustiveness check.
            let _ = EnergyCategory::of(e);
        }
        assert_eq!(
            EnergyCategory::of(ActivityEvent::FpDiv),
            EnergyCategory::Compute
        );
        assert_eq!(
            EnergyCategory::of(ActivityEvent::L2Access),
            EnergyCategory::Memory
        );
        assert_eq!(
            EnergyCategory::of(ActivityEvent::Fetch),
            EnergyCategory::Pipeline
        );
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let mut b = EnergyBreakdown::default();
        b.add(EnergyCategory::Clock, Energy::from_pj(1.0));
        b.add(EnergyCategory::Compute, Energy::from_pj(2.0));
        b.add(EnergyCategory::Memory, Energy::from_pj(3.0));
        b.add(EnergyCategory::Pipeline, Energy::from_pj(4.0));
        assert!((b.total().as_pj() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merged_breakdowns_add_elementwise() {
        let mut a = EnergyBreakdown::default();
        a.add(EnergyCategory::Clock, Energy::from_pj(1.0));
        let mut b = EnergyBreakdown::default();
        b.add(EnergyCategory::Clock, Energy::from_pj(2.0));
        b.add(EnergyCategory::Memory, Energy::from_pj(5.0));
        let m = a.merged(&b);
        assert!((m.clock.as_pj() - 3.0).abs() < 1e-9);
        assert!((m.memory.as_pj() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn meter_counts_cycles_and_events() {
        let mut m = meter();
        let v = Voltage::from_volts(1.0);
        m.charge_cycle(1.0, v);
        m.charge_cycle(0.0, v);
        m.charge_event(ActivityEvent::IntAlu, v);
        m.charge_events(ActivityEvent::Issue, 3, v);
        m.charge_events(ActivityEvent::Issue, 0, v);
        assert_eq!(m.cycles(), 2);
        assert_eq!(m.events(), 4);
        assert!(m.breakdown().clock.as_pj() > 0.0);
        assert!(m.breakdown().compute.as_pj() > 0.0);
        assert!(m.breakdown().pipeline.as_pj() > 0.0);
        assert_eq!(m.breakdown().memory, Energy::ZERO);
    }

    #[test]
    fn lower_voltage_cycles_cost_less() {
        let mut hi = meter();
        let mut lo = meter();
        hi.charge_cycle(1.0, Voltage::from_volts(1.2));
        lo.charge_cycle(1.0, Voltage::from_volts(0.65));
        assert!(lo.total() < hi.total());
        let ratio = lo.total().as_joules() / hi.total().as_joules();
        let expect = (0.65f64 / 1.2).powi(2);
        assert!((ratio - expect).abs() < 1e-9);
    }

    #[test]
    fn charge_events_batches_match_singles() {
        let v = Voltage::from_volts(0.9);
        let mut a = meter();
        let mut b = meter();
        a.charge_events(ActivityEvent::L1DAccess, 5, v);
        for _ in 0..5 {
            b.charge_event(ActivityEvent::L1DAccess, v);
        }
        assert!((a.total().as_pj() - b.total().as_pj()).abs() < 1e-9);
    }
}
