//! Wattch-style power modeling for multiple-clock-domain (MCD) processor
//! simulation.
//!
//! This crate provides the electrical substrate of the HPCA 2005
//! adaptive-DVFS reproduction:
//!
//! * strongly-typed physical units ([`TimePs`], [`Frequency`], [`Voltage`],
//!   [`Energy`]),
//! * the processor's voltage/frequency operating-point table
//!   ([`VfCurve`]): 250 MHz–1.0 GHz, 0.65 V–1.20 V in 320 discrete steps,
//! * a voltage-regulator / PLL transition model ([`Regulator`]) with both
//!   XScale-style (execute-through) and Transmeta-style (stall) semantics,
//! * a per-structure effective-capacitance energy model
//!   ([`wattch::EnergyModel`]) with aggressive clock gating, and
//! * per-domain energy accounting ([`energy::DomainEnergyMeter`]).
//!
//! # Example
//!
//! ```
//! use mcd_power::{VfCurve, Frequency};
//!
//! let curve = VfCurve::mcd_default();
//! let f = Frequency::from_mhz(250.0);
//! let point = curve.point_for_frequency(f);
//! assert!((point.voltage.as_volts() - 0.65).abs() < 1e-9);
//! assert_eq!(curve.min().frequency, f);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod leakage;
pub mod regulator;
pub mod types;
pub mod vf_curve;
pub mod wattch;

pub use energy::{DomainEnergyMeter, EnergyBreakdown, EnergyCategory};
pub use leakage::LeakageModel;
pub use regulator::{DvfsStyle, Regulator, Transition};
pub use types::{Energy, Frequency, TimePs, Voltage};
pub use vf_curve::{OpIndex, OpPoint, VfCurve};
pub use wattch::{ActivityEvent, DomainClass, EnergyModel};
