//! Wattch-style effective-capacitance energy model.
//!
//! Wattch models the dynamic energy of each microarchitectural structure as
//! `E = α · C_eff · V²` per access, plus a clock-distribution cost per
//! cycle, with *aggressive clock gating*: structures that are idle in a
//! cycle still draw a small residual fraction of their nominal power.
//!
//! Absolute wattages are irrelevant to the paper's evaluation (every result
//! is a ratio against the full-speed baseline), so the per-access energies
//! below are plausible relative magnitudes for a ~0.18 µm out-of-order core,
//! normalized at the maximum supply voltage. What matters — and what the
//! tests pin down — is that (a) every access scales with `V²`, (b) clock
//! energy scales with cycle count (hence with `f · t`), and (c) the
//! per-domain split roughly matches the front-end/INT/FP/LS proportions of
//! the Semeraro et al. MCD studies.

use crate::types::{Energy, Voltage};

/// The class of clock domain a per-cycle clock-energy charge belongs to.
///
/// The MCD floorplan of the paper (Figure 1) has four on-chip domains; main
/// memory is external and unmetered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainClass {
    /// Fetch, decode, rename, dispatch, ROB and L1 I-cache.
    FrontEnd,
    /// Integer issue queue and integer ALUs.
    Integer,
    /// Floating-point issue queue and FP ALUs.
    FloatingPoint,
    /// Load/store queue, L1 D-cache and the L2 cache.
    LoadStore,
}

impl DomainClass {
    /// All four on-chip domain classes, in Figure 1 order.
    pub const ALL: [DomainClass; 4] = [
        DomainClass::FrontEnd,
        DomainClass::Integer,
        DomainClass::FloatingPoint,
        DomainClass::LoadStore,
    ];
}

/// A microarchitectural activity that consumes dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityEvent {
    /// One instruction fetched from the L1 I-cache.
    Fetch,
    /// Branch-predictor lookup.
    BpredLookup,
    /// Branch-predictor update on resolve.
    BpredUpdate,
    /// Decode + rename of one instruction.
    DecodeRename,
    /// Dispatch (ROB allocation + issue-queue write) of one instruction.
    Dispatch,
    /// Issue-queue wakeup/select for one issued instruction.
    Issue,
    /// Physical register file read (per operand).
    RegRead,
    /// Physical register file write (per result).
    RegWrite,
    /// One integer ALU operation.
    IntAlu,
    /// One integer multiply/divide operation.
    IntMul,
    /// One FP add/sub/convert operation.
    FpAlu,
    /// One FP multiply operation.
    FpMul,
    /// One FP divide or square root.
    FpDiv,
    /// Load/store queue insertion or search.
    LsqAccess,
    /// L1 D-cache access.
    L1DAccess,
    /// L2 cache access.
    L2Access,
    /// Off-chip memory access (bus + controller energy charged on chip).
    MemAccess,
    /// One instruction committed from the ROB.
    Commit,
}

impl ActivityEvent {
    /// Every event kind (for exhaustive accounting tests).
    pub const ALL: [ActivityEvent; 18] = [
        ActivityEvent::Fetch,
        ActivityEvent::BpredLookup,
        ActivityEvent::BpredUpdate,
        ActivityEvent::DecodeRename,
        ActivityEvent::Dispatch,
        ActivityEvent::Issue,
        ActivityEvent::RegRead,
        ActivityEvent::RegWrite,
        ActivityEvent::IntAlu,
        ActivityEvent::IntMul,
        ActivityEvent::FpAlu,
        ActivityEvent::FpMul,
        ActivityEvent::FpDiv,
        ActivityEvent::LsqAccess,
        ActivityEvent::L1DAccess,
        ActivityEvent::L2Access,
        ActivityEvent::MemAccess,
        ActivityEvent::Commit,
    ];
}

/// Per-structure energy table, normalized at a reference (maximum) voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    v_ref: Voltage,
    /// Residual activity factor of a clock-gated idle structure.
    gated_fraction: f64,
}

impl EnergyModel {
    /// Builds the default model, normalized at `v_ref` (the curve's maximum
    /// voltage), with Wattch's "aggressive clock gating" residual of 10 %.
    pub fn new(v_ref: Voltage) -> Self {
        EnergyModel {
            v_ref,
            gated_fraction: 0.10,
        }
    }

    /// The reference (normalization) voltage.
    pub fn reference_voltage(&self) -> Voltage {
        self.v_ref
    }

    /// Residual power fraction drawn by clock-gated idle structures.
    pub fn gated_fraction(&self) -> f64 {
        self.gated_fraction
    }

    /// Overrides the clock-gating residual (0 = perfect gating, 1 = none).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_gated_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.gated_fraction = fraction;
        self
    }

    /// Energy of one `event` at the reference voltage, in picojoules.
    pub fn event_pj_at_ref(&self, event: ActivityEvent) -> f64 {
        use ActivityEvent::*;
        match event {
            Fetch => 3.0,       // L1 I-cache read, per instruction
            BpredLookup => 1.0, // combined predictor + BTB
            BpredUpdate => 0.8,
            DecodeRename => 2.0, // decode PLA + rename map
            Dispatch => 1.6,     // ROB + issue-queue write
            Issue => 1.2,        // wakeup/select CAM
            RegRead => 0.8,
            RegWrite => 1.0,
            IntAlu => 1.5,
            IntMul => 4.5,
            FpAlu => 3.0,
            FpMul => 5.0,
            FpDiv => 6.5,
            LsqAccess => 1.2,
            L1DAccess => 3.5,
            L2Access => 9.0,
            MemAccess => 20.0, // on-chip bus/controller share
            Commit => 1.0,
        }
    }

    /// Energy of one `event` at supply voltage `v`.
    pub fn event_energy(&self, event: ActivityEvent, v: Voltage) -> Energy {
        Energy::from_pj(self.event_pj_at_ref(event)).scaled(v.squared_ratio(self.v_ref))
    }

    /// Clock-distribution energy per cycle for one domain at the reference
    /// voltage, in picojoules. (GALS removes the *global* clock tree; what
    /// remains is each domain's local tree, roughly sized by domain area.)
    pub fn clock_pj_at_ref(&self, class: DomainClass) -> f64 {
        match class {
            DomainClass::FrontEnd => 5.5,
            DomainClass::Integer => 5.0,
            DomainClass::FloatingPoint => 4.5,
            DomainClass::LoadStore => 5.0,
        }
    }

    /// Per-cycle domain overhead (clock tree + idle structures) at voltage
    /// `v`, given the fraction `utilization ∈ [0, 1]` of the domain's
    /// structures active this cycle.
    ///
    /// With aggressive clock gating, an idle domain still burns
    /// `gated_fraction` of its nominal clock power.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `utilization` is outside `[0, 1]`.
    pub fn cycle_energy(&self, class: DomainClass, utilization: f64, v: Voltage) -> Energy {
        debug_assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization {utilization} out of range"
        );
        let activity = self.gated_fraction + (1.0 - self.gated_fraction) * utilization;
        Energy::from_pj(self.clock_pj_at_ref(class) * activity).scaled(v.squared_ratio(self.v_ref))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(Voltage::from_volts(1.2))
    }

    #[test]
    fn every_event_has_positive_energy() {
        let m = model();
        for &e in &ActivityEvent::ALL {
            assert!(m.event_pj_at_ref(e) > 0.0, "{e:?} has no energy");
        }
    }

    #[test]
    fn event_energy_scales_with_v_squared() {
        let m = model();
        let full = m.event_energy(ActivityEvent::IntAlu, Voltage::from_volts(1.2));
        let half = m.event_energy(ActivityEvent::IntAlu, Voltage::from_volts(0.6));
        assert!((half.as_pj() * 4.0 - full.as_pj()).abs() < 1e-9);
    }

    #[test]
    fn cycle_energy_interpolates_gating() {
        let m = model();
        let v = Voltage::from_volts(1.2);
        let idle = m.cycle_energy(DomainClass::Integer, 0.0, v);
        let busy = m.cycle_energy(DomainClass::Integer, 1.0, v);
        assert!((idle.as_pj() - 0.5).abs() < 1e-9); // 10% residual of 5.0 pJ
        assert!((busy.as_pj() - 5.0).abs() < 1e-9);
        let half = m.cycle_energy(DomainClass::Integer, 0.5, v);
        assert!(idle < half && half < busy);
    }

    #[test]
    fn perfect_gating_zeroes_idle_cycles() {
        let m = model().with_gated_fraction(0.0);
        let idle = m.cycle_energy(DomainClass::FrontEnd, 0.0, Voltage::from_volts(1.2));
        assert_eq!(idle.as_pj(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn invalid_gating_fraction_panics() {
        let _ = model().with_gated_fraction(1.5);
    }

    #[test]
    fn memory_hierarchy_energies_are_ordered() {
        let m = model();
        assert!(
            m.event_pj_at_ref(ActivityEvent::L1DAccess)
                < m.event_pj_at_ref(ActivityEvent::L2Access)
        );
        assert!(
            m.event_pj_at_ref(ActivityEvent::L2Access)
                < m.event_pj_at_ref(ActivityEvent::MemAccess)
        );
    }

    #[test]
    fn all_domain_classes_have_clock_energy() {
        let m = model();
        for &c in &DomainClass::ALL {
            assert!(m.clock_pj_at_ref(c) > 0.0);
        }
    }
}
