//! Strongly-typed physical units used throughout the MCD simulator.
//!
//! The newtypes here follow the "static distinctions" pattern: simulated
//! time, clock frequency, supply voltage and consumed energy are all plain
//! numbers underneath, but mixing them up is a compile error.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in integer picoseconds.
///
/// One picosecond is fine enough to resolve the paper's 300 ps
/// synchronization window and ±10 ps clock jitter, while `u64` picoseconds
/// cover ~214 days of simulated time — far beyond any experiment here.
///
/// ```
/// use mcd_power::TimePs;
/// let t = TimePs::from_ns(4) + TimePs::new(500);
/// assert_eq!(t.as_ps(), 4_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimePs(u64);

impl TimePs {
    /// Time zero (simulation start).
    pub const ZERO: TimePs = TimePs(0);

    /// Creates a time from raw picoseconds.
    pub const fn new(ps: u64) -> Self {
        TimePs(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        TimePs(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        TimePs(us * 1_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds (lossy).
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time in microseconds (lossy).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in seconds (lossy).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    pub fn saturating_sub(self, rhs: TimePs) -> TimePs {
        TimePs(self.0.saturating_sub(rhs.0))
    }

    /// `self` advanced by a fractional number of picoseconds, rounded to the
    /// nearest integer picosecond.
    pub fn advance_f64(self, ps: f64) -> TimePs {
        debug_assert!(ps >= 0.0, "cannot advance time backwards");
        TimePs(self.0 + ps.round() as u64)
    }
}

impl Add for TimePs {
    type Output = TimePs;
    fn add(self, rhs: TimePs) -> TimePs {
        TimePs(self.0 + rhs.0)
    }
}

impl AddAssign for TimePs {
    fn add_assign(&mut self, rhs: TimePs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimePs {
    type Output = TimePs;
    fn sub(self, rhs: TimePs) -> TimePs {
        TimePs(self.0 - rhs.0)
    }
}

impl SubAssign for TimePs {
    fn sub_assign(&mut self, rhs: TimePs) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimePs {
    type Output = TimePs;
    fn mul(self, rhs: u64) -> TimePs {
        TimePs(self.0 * rhs)
    }
}

impl fmt::Display for TimePs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.as_ns())
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// A clock frequency, stored in integer hertz.
///
/// The MCD operating range (250 MHz–1.0 GHz in 320 steps of 2.34375 MHz) is
/// exactly representable in integer hertz, so operating points compare
/// exactly.
///
/// ```
/// use mcd_power::Frequency;
/// let f = Frequency::from_mhz(500.0);
/// assert_eq!(f.as_hz(), 500_000_000);
/// assert!((f.period_ps() - 2000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from raw hertz.
    pub const fn from_hz(hz: u64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz (rounded to the nearest hertz).
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency((mhz * 1e6).round() as u64)
    }

    /// Creates a frequency from gigahertz (rounded to the nearest hertz).
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency((ghz * 1e9).round() as u64)
    }

    /// Raw hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Frequency in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Frequency in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Clock period in (fractional) picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period_ps(self) -> f64 {
        assert!(self.0 > 0, "zero frequency has no period");
        1e12 / self.0 as f64
    }

    /// Fraction of `max` this frequency represents (the paper's relative
    /// frequency `f̂ = f / f_max`).
    pub fn relative_to(self, max: Frequency) -> f64 {
        self.0 as f64 / max.0 as f64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MHz", self.as_mhz())
    }
}

/// A supply voltage in volts.
///
/// Stored as `f64`; exact identity of operating points is tracked via
/// [`crate::OpIndex`], not by comparing voltages.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Voltage(f64);

impl Voltage {
    /// Creates a voltage from volts.
    ///
    /// # Panics
    ///
    /// Panics if `volts` is negative or non-finite.
    pub fn from_volts(volts: f64) -> Self {
        assert!(volts.is_finite() && volts >= 0.0, "invalid voltage {volts}");
        Voltage(volts)
    }

    /// Creates a voltage from millivolts.
    pub fn from_mv(mv: f64) -> Self {
        Voltage::from_volts(mv / 1e3)
    }

    /// Volts.
    pub const fn as_volts(self) -> f64 {
        self.0
    }

    /// Millivolts.
    pub fn as_mv(self) -> f64 {
        self.0 * 1e3
    }

    /// `(self / reference)^2` — the CMOS dynamic-energy scaling factor.
    pub fn squared_ratio(self, reference: Voltage) -> f64 {
        let r = self.0 / reference.0;
        r * r
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mV", self.as_mv())
    }
}

/// An amount of energy in joules.
///
/// ```
/// use mcd_power::Energy;
/// let e = Energy::from_pj(1500.0);
/// assert!((e.as_nj() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    pub const fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj / 1e9)
    }

    /// Creates an energy from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj / 1e12)
    }

    /// Joules.
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// Nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 * 1e9
    }

    /// Picojoules.
    pub fn as_pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 * 1e3
    }

    /// Scales the energy by a dimensionless factor.
    pub fn scaled(self, factor: f64) -> Energy {
        Energy(self.0 * factor)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |acc, e| acc + e)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e-3 {
            write!(f, "{:.3} mJ", self.as_mj())
        } else if self.0.abs() >= 1e-6 {
            write!(f, "{:.3} uJ", self.0 * 1e6)
        } else {
            write!(f, "{:.3} nJ", self.as_nj())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_and_conversion() {
        assert_eq!(TimePs::from_ns(1).as_ps(), 1000);
        assert_eq!(TimePs::from_us(1).as_ps(), 1_000_000);
        assert_eq!(TimePs::new(2500).as_ns(), 2.5);
        assert_eq!(TimePs::from_us(3).as_us(), 3.0);
        assert_eq!(TimePs::from_us(2).as_secs(), 2e-6);
    }

    #[test]
    fn time_arithmetic() {
        let a = TimePs::new(100);
        let b = TimePs::new(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!(b.saturating_sub(a), TimePs::ZERO);
        assert_eq!((a * 3).as_ps(), 300);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ps(), 140);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn time_advance_rounds_to_nearest() {
        assert_eq!(TimePs::new(10).advance_f64(1.4).as_ps(), 11);
        assert_eq!(TimePs::new(10).advance_f64(1.6).as_ps(), 12);
    }

    #[test]
    fn time_display_picks_unit() {
        assert_eq!(format!("{}", TimePs::new(12)), "12 ps");
        assert_eq!(format!("{}", TimePs::from_ns(2)), "2.000 ns");
        assert_eq!(format!("{}", TimePs::from_us(5)), "5.000 us");
    }

    #[test]
    fn frequency_periods() {
        assert_eq!(Frequency::from_ghz(1.0).period_ps(), 1000.0);
        assert_eq!(Frequency::from_mhz(250.0).period_ps(), 4000.0);
    }

    #[test]
    fn frequency_relative() {
        let max = Frequency::from_ghz(1.0);
        assert_eq!(Frequency::from_mhz(500.0).relative_to(max), 0.5);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Frequency::from_hz(0).period_ps();
    }

    #[test]
    fn voltage_scaling() {
        let v = Voltage::from_volts(0.6);
        let vmax = Voltage::from_volts(1.2);
        assert!((v.squared_ratio(vmax) - 0.25).abs() < 1e-12);
        assert_eq!(Voltage::from_mv(650.0).as_volts(), 0.65);
    }

    #[test]
    #[should_panic(expected = "invalid voltage")]
    fn negative_voltage_panics() {
        let _ = Voltage::from_volts(-0.1);
    }

    #[test]
    fn energy_arithmetic_and_sum() {
        let e1 = Energy::from_pj(500.0);
        let e2 = Energy::from_pj(250.0);
        assert!(((e1 + e2).as_pj() - 750.0).abs() < 1e-9);
        assert!(((e1 - e2).as_pj() - 250.0).abs() < 1e-9);
        assert!((e1.scaled(2.0).as_pj() - 1000.0).abs() < 1e-9);
        assert!(((e1 * 2.0).as_pj() - 1000.0).abs() < 1e-9);
        assert!((e1 / e2 - 2.0).abs() < 1e-12);
        let total: Energy = [e1, e2, e2].into_iter().sum();
        assert!((total.as_pj() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn energy_display_picks_unit() {
        assert!(format!("{}", Energy::from_pj(10.0)).ends_with("nJ"));
        assert!(format!("{}", Energy::from_joules(0.5)).ends_with("mJ"));
        assert!(format!("{}", Energy::from_joules(5e-5)).ends_with("uJ"));
    }
}
