//! Static (leakage) power model.
//!
//! Wattch-era (0.18 µm) leakage is a small fraction of total power, but it
//! changes the DVFS accounting in a qualitative way: leakage energy scales
//! with *time and voltage*, not with clock frequency — so slowing a domain
//! down stretches its leakage energy even as it shrinks its dynamic
//! energy. The model here is the standard first-order
//! `P_leak = P₀ · (V/V_ref) · e^{k(V−V_ref)}` shape reduced to its linear
//! term (adequate over the 0.65–1.2 V range).

use crate::types::{Energy, TimePs, Voltage};
use crate::wattch::DomainClass;

/// Per-domain leakage power model.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageModel {
    v_ref: Voltage,
    /// Leakage power at `v_ref` per domain, in µW.
    scale: f64,
}

impl LeakageModel {
    /// Builds the default model: each domain leaks a few percent of its
    /// typical dynamic power at the reference voltage.
    pub fn new(v_ref: Voltage) -> Self {
        LeakageModel { v_ref, scale: 1.0 }
    }

    /// Scales all leakage (1.0 = default ≈ 0.18 µm technology; larger
    /// values model leakier processes, the knob of the leakage ablation).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn with_scale(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "invalid leakage scale");
        self.scale = factor;
        self
    }

    /// Leakage power of `class` at the reference voltage, in microwatts.
    pub fn leak_uw_at_ref(&self, class: DomainClass) -> f64 {
        let base = match class {
            DomainClass::FrontEnd => 220.0,
            DomainClass::Integer => 190.0,
            DomainClass::FloatingPoint => 180.0,
            DomainClass::LoadStore => 260.0, // cache arrays leak most
        };
        base * self.scale
    }

    /// Leakage energy of `class` over `duration` at supply voltage `v`
    /// (linear voltage scaling).
    pub fn energy(&self, class: DomainClass, duration: TimePs, v: Voltage) -> Energy {
        let watts = self.leak_uw_at_ref(class) * 1e-6 * (v.as_volts() / self.v_ref.as_volts());
        Energy::from_joules(watts * duration.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LeakageModel {
        LeakageModel::new(Voltage::from_volts(1.2))
    }

    #[test]
    fn leakage_scales_with_time() {
        let m = model();
        let short = m.energy(
            DomainClass::Integer,
            TimePs::from_us(1),
            Voltage::from_volts(1.2),
        );
        let long = m.energy(
            DomainClass::Integer,
            TimePs::from_us(10),
            Voltage::from_volts(1.2),
        );
        assert!((long.as_joules() / short.as_joules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_linearly_with_voltage() {
        let m = model();
        let hi = m.energy(
            DomainClass::LoadStore,
            TimePs::from_us(1),
            Voltage::from_volts(1.2),
        );
        let lo = m.energy(
            DomainClass::LoadStore,
            TimePs::from_us(1),
            Voltage::from_volts(0.6),
        );
        assert!((hi.as_joules() / lo.as_joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scale_zero_disables_leakage() {
        let m = model().with_scale(0.0);
        let e = m.energy(
            DomainClass::FrontEnd,
            TimePs::from_us(5),
            Voltage::from_volts(1.0),
        );
        assert_eq!(e, Energy::ZERO);
    }

    #[test]
    fn reference_magnitude_is_small_vs_dynamic() {
        // At 1 GHz a busy domain burns ~5 pJ/cycle = 5 mW of dynamic
        // power; leakage should be a few percent of that.
        let m = model();
        let leak_w = m.leak_uw_at_ref(DomainClass::Integer) * 1e-6;
        assert!(leak_w > 0.5e-4 && leak_w < 1e-3, "leakage {leak_w} W");
    }

    #[test]
    #[should_panic(expected = "invalid leakage scale")]
    fn negative_scale_panics() {
        let _ = model().with_scale(-1.0);
    }
}
