//! The voltage/frequency operating-point table of the MCD processor.
//!
//! Following the paper's Table 1, each clock domain may run anywhere in the
//! 250 MHz–1.0 GHz / 0.65 V–1.20 V range; the DVFS mechanism moves between
//! **320 discrete steps** of 2.34375 MHz (and 1.71875 mV) each, and a single
//! triggered action increments or decrements the setting by one step.

use crate::types::{Frequency, Voltage};

/// Index of an operating point in a [`VfCurve`].
///
/// `OpIndex(0)` is the minimum point (250 MHz / 0.65 V for the default
/// curve); the maximum index equals the number of steps (320 by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpIndex(pub u16);

impl OpIndex {
    /// Index moved by `delta` steps, clamped to `[0, max]`.
    pub fn stepped(self, delta: i32, max: OpIndex) -> OpIndex {
        let raw = self.0 as i32 + delta;
        OpIndex(raw.clamp(0, max.0 as i32) as u16)
    }
}

/// A single voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpPoint {
    /// Position in the curve's step table.
    pub index: OpIndex,
    /// Clock frequency at this point.
    pub frequency: Frequency,
    /// Supply voltage at this point.
    pub voltage: Voltage,
}

/// A linear voltage/frequency curve discretized into equal frequency steps.
///
/// The curve is the authoritative map between step indices, frequencies and
/// voltages; everything else in the simulator stores [`OpIndex`] values and
/// asks the curve for physics.
///
/// ```
/// use mcd_power::{VfCurve, OpIndex};
///
/// let curve = VfCurve::mcd_default();
/// assert_eq!(curve.steps(), 320);
/// let mid = curve.point(OpIndex(160));
/// assert!((mid.frequency.as_mhz() - 625.0).abs() < 1e-6);
/// assert!((mid.voltage.as_volts() - 0.925).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfCurve {
    f_min: Frequency,
    f_max: Frequency,
    v_min: Voltage,
    v_max: Voltage,
    steps: u16,
}

impl VfCurve {
    /// Builds a curve over `[f_min, f_max]` × `[v_min, v_max]` with `steps`
    /// equal frequency increments.
    ///
    /// # Panics
    ///
    /// Panics if `f_min >= f_max`, `v_min > v_max`, or `steps == 0`.
    pub fn new(
        f_min: Frequency,
        f_max: Frequency,
        v_min: Voltage,
        v_max: Voltage,
        steps: u16,
    ) -> Self {
        assert!(f_min < f_max, "f_min must be below f_max");
        assert!(v_min <= v_max, "v_min must not exceed v_max");
        assert!(steps > 0, "need at least one step");
        VfCurve {
            f_min,
            f_max,
            v_min,
            v_max,
            steps,
        }
    }

    /// The paper's Table 1 configuration: 250 MHz–1.0 GHz, 0.65 V–1.20 V,
    /// 320 steps (≈2.34 MHz and ≈1.72 mV per step).
    pub fn mcd_default() -> Self {
        VfCurve::new(
            Frequency::from_mhz(250.0),
            Frequency::from_ghz(1.0),
            Voltage::from_volts(0.65),
            Voltage::from_volts(1.20),
            320,
        )
    }

    /// Number of steps between the minimum and maximum points (the number of
    /// valid indices is `steps() + 1`).
    pub fn steps(&self) -> u16 {
        self.steps
    }

    /// The highest valid index.
    pub fn max_index(&self) -> OpIndex {
        OpIndex(self.steps)
    }

    /// Frequency distance between adjacent operating points.
    pub fn freq_step(&self) -> Frequency {
        Frequency::from_hz((self.f_max.as_hz() - self.f_min.as_hz()) / self.steps as u64)
    }

    /// Voltage distance between adjacent operating points.
    pub fn volt_step(&self) -> Voltage {
        Voltage::from_volts((self.v_max.as_volts() - self.v_min.as_volts()) / self.steps as f64)
    }

    /// The operating point at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`VfCurve::max_index`].
    pub fn point(&self, index: OpIndex) -> OpPoint {
        assert!(
            index.0 <= self.steps,
            "operating-point index {} out of range 0..={}",
            index.0,
            self.steps
        );
        let frac = index.0 as f64 / self.steps as f64;
        let hz = self.f_min.as_hz()
            + ((self.f_max.as_hz() - self.f_min.as_hz()) as f64 * frac).round() as u64;
        let volts = self.v_min.as_volts() + (self.v_max.as_volts() - self.v_min.as_volts()) * frac;
        OpPoint {
            index,
            frequency: Frequency::from_hz(hz),
            voltage: Voltage::from_volts(volts),
        }
    }

    /// The minimum operating point.
    pub fn min(&self) -> OpPoint {
        self.point(OpIndex(0))
    }

    /// The maximum operating point.
    pub fn max(&self) -> OpPoint {
        self.point(self.max_index())
    }

    /// The operating point whose frequency is nearest to `f` (clamped to the
    /// curve's range).
    pub fn point_for_frequency(&self, f: Frequency) -> OpPoint {
        let f = f.as_hz().clamp(self.f_min.as_hz(), self.f_max.as_hz());
        let span = (self.f_max.as_hz() - self.f_min.as_hz()) as f64;
        let idx = ((f - self.f_min.as_hz()) as f64 / span * self.steps as f64).round() as u16;
        self.point(OpIndex(idx))
    }

    /// Voltage the regulator must supply for a *continuous* frequency `f`
    /// (linear interpolation; used while a transition is in flight).
    pub fn voltage_for_frequency(&self, f: Frequency) -> Voltage {
        let f = f.as_hz().clamp(self.f_min.as_hz(), self.f_max.as_hz());
        let span = (self.f_max.as_hz() - self.f_min.as_hz()) as f64;
        let frac = (f - self.f_min.as_hz()) as f64 / span;
        Voltage::from_volts(
            self.v_min.as_volts() + (self.v_max.as_volts() - self.v_min.as_volts()) * frac,
        )
    }
}

impl Default for VfCurve {
    fn default() -> Self {
        VfCurve::mcd_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_curve_matches_table1() {
        let c = VfCurve::mcd_default();
        assert_eq!(c.min().frequency, Frequency::from_mhz(250.0));
        assert_eq!(c.max().frequency, Frequency::from_ghz(1.0));
        assert!((c.min().voltage.as_volts() - 0.65).abs() < 1e-12);
        assert!((c.max().voltage.as_volts() - 1.20).abs() < 1e-12);
        // ~2.34 MHz per step, as discussed in Section 5.1.
        assert!((c.freq_step().as_mhz() - 2.34375).abs() < 1e-6);
    }

    #[test]
    fn point_roundtrip_via_frequency() {
        let c = VfCurve::mcd_default();
        for idx in [0u16, 1, 7, 160, 319, 320] {
            let p = c.point(OpIndex(idx));
            let q = c.point_for_frequency(p.frequency);
            assert_eq!(p.index, q.index, "index {idx} did not round-trip");
        }
    }

    #[test]
    fn frequency_clamps_to_range() {
        let c = VfCurve::mcd_default();
        assert_eq!(
            c.point_for_frequency(Frequency::from_mhz(100.0)).index,
            OpIndex(0)
        );
        assert_eq!(
            c.point_for_frequency(Frequency::from_ghz(2.0)).index,
            c.max_index()
        );
    }

    #[test]
    fn stepping_clamps() {
        let c = VfCurve::mcd_default();
        let max = c.max_index();
        assert_eq!(OpIndex(0).stepped(-5, max), OpIndex(0));
        assert_eq!(OpIndex(0).stepped(3, max), OpIndex(3));
        assert_eq!(max.stepped(10, max), max);
        assert_eq!(OpIndex(100).stepped(-100, max), OpIndex(0));
    }

    #[test]
    fn voltage_interpolation_is_linear() {
        let c = VfCurve::mcd_default();
        let v = c.voltage_for_frequency(Frequency::from_mhz(625.0));
        assert!((v.as_volts() - 0.925).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let c = VfCurve::mcd_default();
        let _ = c.point(OpIndex(321));
    }

    #[test]
    #[should_panic(expected = "f_min must be below f_max")]
    fn inverted_range_panics() {
        let _ = VfCurve::new(
            Frequency::from_ghz(1.0),
            Frequency::from_mhz(250.0),
            Voltage::from_volts(0.65),
            Voltage::from_volts(1.2),
            320,
        );
    }
}
