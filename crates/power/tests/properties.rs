//! Property-based tests for the power substrate.

use mcd_power::{DvfsStyle, Energy, Frequency, OpIndex, Regulator, TimePs, VfCurve, Voltage};
use proptest::prelude::*;

fn curve() -> VfCurve {
    VfCurve::mcd_default()
}

proptest! {
    /// Frequency and voltage are monotone in the operating-point index.
    #[test]
    fn vf_curve_is_monotone(a in 0u16..=320, b in 0u16..=320) {
        let c = curve();
        let pa = c.point(OpIndex(a));
        let pb = c.point(OpIndex(b));
        if a < b {
            prop_assert!(pa.frequency < pb.frequency);
            prop_assert!(pa.voltage < pb.voltage);
        } else if a == b {
            prop_assert_eq!(pa.frequency, pb.frequency);
        }
    }

    /// Every operating point round-trips through its own frequency.
    #[test]
    fn point_frequency_roundtrip(idx in 0u16..=320) {
        let c = curve();
        let p = c.point(OpIndex(idx));
        prop_assert_eq!(c.point_for_frequency(p.frequency).index, p.index);
    }

    /// `point_for_frequency` always returns a valid index, for any input.
    #[test]
    fn arbitrary_frequency_maps_into_range(hz in 1u64..5_000_000_000) {
        let c = curve();
        let p = c.point_for_frequency(Frequency::from_hz(hz));
        prop_assert!(p.index.0 <= c.max_index().0);
        prop_assert!(p.frequency >= c.min().frequency);
        prop_assert!(p.frequency <= c.max().frequency);
    }

    /// A regulator's effective frequency always stays within the envelope
    /// of its transition endpoints, and transitions always terminate.
    #[test]
    fn regulator_frequency_stays_in_envelope(
        start in 0u16..=320,
        target in 0u16..=320,
        probe_fraction in 0.0f64..1.5,
    ) {
        let c = curve();
        let mut reg = Regulator::new(c.clone(), DvfsStyle::XScale, OpIndex(start));
        let end = reg.request(OpIndex(target), TimePs::ZERO);
        let probe = TimePs::new((end.as_ps() as f64 * probe_fraction) as u64);
        let f = reg.frequency_at(probe);
        let f0 = c.point(OpIndex(start)).frequency;
        let f1 = c.point(OpIndex(target)).frequency;
        let (lo, hi) = if f0 <= f1 { (f0, f1) } else { (f1, f0) };
        prop_assert!(f >= lo && f <= hi, "f={f} outside [{lo}, {hi}]");
        prop_assert_eq!(reg.frequency_at(end), f1);
        prop_assert!(!reg.is_transitioning(end));
    }

    /// Transition duration is proportional to the frequency distance.
    #[test]
    fn transition_time_proportional_to_distance(
        start in 0u16..=320,
        target in 0u16..=320,
    ) {
        let c = curve();
        let mut reg = Regulator::new(c.clone(), DvfsStyle::XScale, OpIndex(start));
        let end = reg.request(OpIndex(target), TimePs::ZERO);
        let dist_mhz = (c.point(OpIndex(start)).frequency.as_mhz()
            - c.point(OpIndex(target)).frequency.as_mhz())
        .abs();
        let expect_ps = dist_mhz * 73.3 * 1e3;
        prop_assert!((end.as_ps() as f64 - expect_ps).abs() <= 1.0);
    }

    /// Event energy is strictly increasing in voltage (V² scaling).
    #[test]
    fn event_energy_monotone_in_voltage(mv_a in 650.0f64..1200.0, mv_b in 650.0f64..1200.0) {
        use mcd_power::{ActivityEvent, EnergyModel};
        let m = EnergyModel::new(Voltage::from_volts(1.2));
        let ea = m.event_energy(ActivityEvent::L1DAccess, Voltage::from_mv(mv_a));
        let eb = m.event_energy(ActivityEvent::L1DAccess, Voltage::from_mv(mv_b));
        if mv_a < mv_b {
            prop_assert!(ea < eb);
        }
    }

    /// Meter totals equal the sum of the breakdown categories.
    #[test]
    fn meter_total_consistent(
        cycles in 0u64..200,
        alus in 0u64..200,
        loads in 0u64..200,
    ) {
        use mcd_power::{ActivityEvent, DomainClass, DomainEnergyMeter, EnergyModel};
        let mut meter = DomainEnergyMeter::new(
            DomainClass::LoadStore,
            EnergyModel::new(Voltage::from_volts(1.2)),
        );
        let v = Voltage::from_volts(1.0);
        for _ in 0..cycles {
            meter.charge_cycle(0.3, v);
        }
        meter.charge_events(ActivityEvent::IntAlu, alus, v);
        meter.charge_events(ActivityEvent::L1DAccess, loads, v);
        let b = meter.breakdown();
        let sum = b.clock + b.compute + b.memory + b.pipeline + b.leakage;
        prop_assert!((sum.as_joules() - meter.total().as_joules()).abs() <= f64::EPSILON);
        prop_assert_eq!(meter.cycles(), cycles);
        prop_assert_eq!(meter.events(), alus + loads);
        if cycles + alus + loads == 0 {
            prop_assert_eq!(meter.total(), Energy::ZERO);
        }
    }
}
