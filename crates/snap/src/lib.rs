//! Minimal binary encoding for deterministic state snapshots.
//!
//! The simulator's snapshot format (DESIGN.md §12) needs exactly three
//! properties, and nothing a general serialization framework offers on
//! top of them:
//!
//! * **bit-exactness** — every `f64` travels as its `to_bits` pattern, so
//!   a restored machine resumes with the *identical* values, not a
//!   round-tripped decimal approximation;
//! * **self-delimiting reads** — a reader can never run past the end of a
//!   truncated buffer silently; every take is bounds-checked and surfaces
//!   [`SnapError::Truncated`];
//! * **zero dependencies** — snapshots cross crate layers from
//!   `mcd-power` up through `mcd-bench`, so the encoding lives below all
//!   of them.
//!
//! The encoding is little-endian fixed-width integers; `Option` is a
//! one-byte tag (0/1) followed by the value; sequences are a `u64` length
//! followed by the items. There is no schema in the bytes themselves —
//! writers and readers are the paired `save`/`load` methods of one code
//! version, and the [`Machine`](../mcd_sim/struct.Machine.html) header
//! (magic, format version, config hash) plus the harness's
//! `code_fingerprint()` stamp reject any cross-version read before field
//! decoding starts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Errors surfaced while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value being read.
    Truncated {
        /// Byte offset at which the read was attempted.
        at: usize,
    },
    /// A one-byte tag (bool / option) held neither 0 nor 1.
    BadTag {
        /// The offending byte.
        tag: u8,
        /// Byte offset of the tag.
        at: usize,
    },
    /// A structural check failed (magic, version, hash, length bound, or
    /// a field invariant the loader verifies). The message names the
    /// field and both values.
    Mismatch(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { at } => {
                write!(f, "snapshot truncated at byte {at}")
            }
            SnapError::BadTag { tag, at } => {
                write!(f, "snapshot tag byte {tag:#04x} at byte {at} is not 0/1")
            }
            SnapError::Mismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Shorthand for snapshot-decoding results.
pub type SnapResult<T> = Result<T, SnapError>;

/// Append-only encoder for one snapshot buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as a 0/1 byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes an optional `u64`: tag byte then the value if present.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
        }
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a length prefix followed by each item through `f`.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.put_usize(items.len());
        for item in items {
            f(self, item);
        }
    }
}

/// Bounds-checked decoder over one snapshot buffer.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset (for error context).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn take_u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> SnapResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> SnapResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> SnapResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` written by [`SnapWriter::put_usize`]; rejects
    /// values that do not fit the platform's `usize`.
    pub fn take_usize(&mut self) -> SnapResult<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Mismatch(format!("length {v} exceeds usize")))
    }

    /// Reads a 0/1 tag byte as a bool.
    pub fn take_bool(&mut self) -> SnapResult<bool> {
        let at = self.pos;
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag { tag, at }),
        }
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn take_f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads an optional `u64` written by [`SnapWriter::put_opt_u64`].
    pub fn take_opt_u64(&mut self) -> SnapResult<Option<u64>> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn take_bytes(&mut self) -> SnapResult<&'a [u8]> {
        let n = self.take_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> SnapResult<String> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Mismatch("non-UTF-8 string field".into()))
    }

    /// Reads a sequence written by [`SnapWriter::put_seq`]. The length is
    /// sanity-bounded by the remaining bytes (each item is at least one
    /// byte) so a corrupt length cannot trigger a huge allocation.
    pub fn take_seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> SnapResult<T>,
    ) -> SnapResult<Vec<T>> {
        let n = self.take_usize()?;
        if n > self.remaining() {
            return Err(SnapError::Mismatch(format!(
                "sequence length {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Asserts the buffer is fully consumed — a loader's final check that
    /// writer and reader agreed on every field.
    pub fn finish(self) -> SnapResult<()> {
        if self.remaining() != 0 {
            return Err(SnapError::Mismatch(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Checks a `u32` field equals `expect`, naming `what` on mismatch.
    pub fn expect_u32(&mut self, expect: u32, what: &str) -> SnapResult<()> {
        let got = self.take_u32()?;
        if got != expect {
            return Err(SnapError::Mismatch(format!(
                "{what}: found {got:#010x}, expected {expect:#010x}"
            )));
        }
        Ok(())
    }

    /// Checks a `u64` field equals `expect`, naming `what` on mismatch.
    pub fn expect_u64(&mut self, expect: u64, what: &str) -> SnapResult<()> {
        let got = self.take_u64()?;
        if got != expect {
            return Err(SnapError::Mismatch(format!(
                "{what}: found {got:#018x}, expected {expect:#018x}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_exact() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f64(1.0 / 3.0);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(77));
        w.put_str("héllo");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_usize().unwrap(), 12345);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(r.take_opt_u64().unwrap(), None);
        assert_eq!(r.take_opt_u64().unwrap(), Some(77));
        assert_eq!(r.take_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn sequence_roundtrip() {
        let mut w = SnapWriter::new();
        let items = vec![(1u64, 2.5f64), (3, -0.5), (u64::MAX, f64::INFINITY)];
        w.put_seq(&items, |w, &(a, b)| {
            w.put_u64(a);
            w.put_f64(b);
        });
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = r.take_seq(|r| Ok((r.take_u64()?, r.take_f64()?))).unwrap();
        assert_eq!(back, items);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_buffer_is_rejected_not_read_past() {
        let mut w = SnapWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert_eq!(r.take_u64(), Err(SnapError::Truncated { at: 0 }));
        }
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let bytes = [7u8];
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_bool(), Err(SnapError::BadTag { tag: 7, at: 0 }));
    }

    #[test]
    fn corrupt_sequence_length_does_not_allocate() {
        let mut w = SnapWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.take_seq(|r| r.take_u8()),
            Err(SnapError::Mismatch(_))
        ));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.take_u8().unwrap();
        assert!(matches!(r.finish(), Err(SnapError::Mismatch(_))));
    }

    #[test]
    fn expect_helpers_name_the_field() {
        let mut w = SnapWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let err = r.expect_u32(2, "format version").unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
    }
}
