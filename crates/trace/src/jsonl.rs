//! Lossless JSONL interop with the PR 2 `--trace-out` format.
//!
//! [`render_jsonl`] reproduces the harness writer byte-for-byte (it
//! splices each event's own `to_json` body after the run tag), and
//! [`parse_jsonl`] inverts it exactly: `f64` text produced by the writer
//! is the shortest round-trip form, so `parse → render` returns the
//! original bytes — the property the `.mcdt` converter is gated on.

use mcd_power::{OpIndex, TimePs};
use mcd_sim::{CtrlEvent, DomainId, ResetReason, SignalKind, StepDir, TraceEvent};

use crate::{err, RunRecording, TraceCodecError};

/// Escapes a run label for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders labeled event streams as the harness's JSON-lines format: one
/// event per line, each tagged with the run label that produced it.
pub fn render_jsonl(traces: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::new();
    for (label, events) in traces {
        let run = json_escape(label);
        for ev in events {
            let body = ev.to_json();
            // Splice the run tag into the event object: {"run":"...",...}.
            out.push_str(&format!("{{\"run\": \"{run}\", {}\n", &body[1..]));
        }
    }
    out
}

// -------------------------------------------------------- flat tokenizer

/// A value in a flat trace-line object: a string, a raw scalar token
/// (number or `null`), or an array of raw scalar tokens.
enum JVal {
    Str(String),
    Raw(String),
    Arr(Vec<String>),
}

struct Scan<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Scan<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceCodecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected {:?} at byte {} of trace line",
                b as char, self.pos
            )))
        }
    }

    fn string(&mut self) -> Result<String, TraceCodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| err("unterminated string in trace line"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex).map_err(|_| err("bad \\u hex"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| err("bad \\u hex"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err("\\u escape is not a scalar value"))?,
                            );
                        }
                        other => return Err(err(format!("unknown escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.s[self.pos..])
                        .map_err(|_| err("trace line is not UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn raw_scalar(&mut self) -> Result<String, TraceCodecError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b',' | b'}' | b']') || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(err("empty scalar in trace line"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn value(&mut self) -> Result<JVal, TraceCodecError> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| err("missing value in trace line"))?
        {
            b'"' => Ok(JVal::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.raw_scalar()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JVal::Arr(items));
                        }
                        _ => return Err(err("unterminated array in trace line")),
                    }
                }
            }
            _ => Ok(JVal::Raw(self.raw_scalar()?)),
        }
    }
}

/// Parses one flat trace-line object into key/value pairs.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JVal)>, TraceCodecError> {
    let mut sc = Scan {
        s: line.as_bytes(),
        pos: 0,
    };
    sc.skip_ws();
    sc.expect(b'{')?;
    let mut fields = Vec::new();
    sc.skip_ws();
    if sc.peek() == Some(b'}') {
        return Ok(fields);
    }
    loop {
        sc.skip_ws();
        let key = sc.string()?;
        sc.skip_ws();
        sc.expect(b':')?;
        let val = sc.value()?;
        fields.push((key, val));
        sc.skip_ws();
        match sc.peek() {
            Some(b',') => sc.pos += 1,
            Some(b'}') => {
                sc.pos += 1;
                sc.skip_ws();
                if sc.pos != sc.s.len() {
                    return Err(err("trailing bytes after trace-line object"));
                }
                return Ok(fields);
            }
            _ => return Err(err("unterminated trace-line object")),
        }
    }
}

// ---------------------------------------------------------- field access

struct Fields(Vec<(String, JVal)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&JVal> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str(&self, key: &str) -> Result<&str, TraceCodecError> {
        match self.get(key) {
            Some(JVal::Str(s)) => Ok(s),
            _ => Err(err(format!("missing string field {key:?}"))),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, TraceCodecError> {
        match self.get(key) {
            Some(JVal::Raw(s)) => s
                .parse::<u64>()
                .map_err(|_| err(format!("field {key:?} is not a u64: {s:?}"))),
            _ => Err(err(format!("missing numeric field {key:?}"))),
        }
    }

    /// An `f64` field as the writer emits it: a JSON number in shortest
    /// round-trip form, or `null` for non-finite values (decoded as NaN,
    /// which the writer maps back to `null`).
    fn f64(&self, key: &str) -> Result<f64, TraceCodecError> {
        match self.get(key) {
            Some(JVal::Raw(s)) if s == "null" => Ok(f64::NAN),
            Some(JVal::Raw(s)) => s
                .parse::<f64>()
                .map_err(|_| err(format!("field {key:?} is not an f64: {s:?}"))),
            _ => Err(err(format!("missing numeric field {key:?}"))),
        }
    }

    fn counts(&self, key: &str) -> Result<Vec<u64>, TraceCodecError> {
        match self.get(key) {
            Some(JVal::Arr(items)) => items
                .iter()
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|_| err(format!("count {s:?} is not a u64")))
                })
                .collect(),
            _ => Err(err(format!("missing array field {key:?}"))),
        }
    }
}

fn domain_from_label(s: &str) -> Result<DomainId, TraceCodecError> {
    match s {
        "front-end" => Ok(DomainId::FrontEnd),
        "INT" => Ok(DomainId::Int),
        "FP" => Ok(DomainId::Fp),
        "LS" => Ok(DomainId::Ls),
        _ => Err(err(format!("unknown domain {s:?}"))),
    }
}

fn signal_from_label(s: &str) -> Result<SignalKind, TraceCodecError> {
    match s {
        "occupancy" => Ok(SignalKind::Occupancy),
        "delta" => Ok(SignalKind::Delta),
        _ => Err(err(format!("unknown signal {s:?}"))),
    }
}

fn dir_from_label(s: &str) -> Result<StepDir, TraceCodecError> {
    match s {
        "up" => Ok(StepDir::Up),
        "down" => Ok(StepDir::Down),
        _ => Err(err(format!("unknown direction {s:?}"))),
    }
}

fn why_from_label(s: &str) -> Result<ResetReason, TraceCodecError> {
    match s {
        "back-inside" => Ok(ResetReason::BackInside),
        "side-flip" => Ok(ResetReason::SideFlip),
        "cancelled" => Ok(ResetReason::Cancelled),
        "acted" => Ok(ResetReason::Acted),
        _ => Err(err(format!("unknown reset reason {s:?}"))),
    }
}

/// Parses one trace line into its run label and event.
pub(crate) fn parse_line(line: &str) -> Result<(String, TraceEvent), TraceCodecError> {
    let fields = Fields(parse_flat_object(line)?);
    let run = fields.str("run")?.to_string();
    let domain = domain_from_label(fields.str("domain")?)?;
    let at = TimePs::new(fields.u64("t_ps")?);
    let kind = fields.str("kind")?;
    let ctrl = |event: CtrlEvent| TraceEvent::Controller { domain, event };
    let occupancy = || {
        fields
            .u64("occupancy")
            .and_then(|v| u32::try_from(v).map_err(|_| err("occupancy > u32")))
    };
    let event = match kind {
        "window_enter" => ctrl(CtrlEvent::WindowEnter {
            at,
            signal: signal_from_label(fields.str("signal")?)?,
            value: fields.f64("value")?,
            occupancy: occupancy()?,
            dir: dir_from_label(fields.str("dir")?)?,
        }),
        "window_exit" => ctrl(CtrlEvent::WindowExit {
            at,
            signal: signal_from_label(fields.str("signal")?)?,
            value: fields.f64("value")?,
            occupancy: occupancy()?,
        }),
        "relay_arm" => ctrl(CtrlEvent::RelayArm {
            at,
            signal: signal_from_label(fields.str("signal")?)?,
            dir: dir_from_label(fields.str("dir")?)?,
            remaining: fields.f64("remaining")?,
        }),
        "relay_fire" => ctrl(CtrlEvent::RelayFire {
            at,
            signal: signal_from_label(fields.str("signal")?)?,
            dir: dir_from_label(fields.str("dir")?)?,
        }),
        "relay_reset" => ctrl(CtrlEvent::RelayReset {
            at,
            signal: signal_from_label(fields.str("signal")?)?,
            why: why_from_label(fields.str("why")?)?,
        }),
        "freq_step" => {
            let from =
                OpIndex(u16::try_from(fields.u64("from_idx")?).map_err(|_| err("from_idx > u16"))?);
            let to =
                OpIndex(u16::try_from(fields.u64("to_idx")?).map_err(|_| err("to_idx > u16"))?);
            // "dir" is derived from from/to by the writer; re-derivation
            // on render reproduces it, so it is validated, not stored.
            let dir = dir_from_label(fields.str("dir")?)?;
            let derived = if to.0 > from.0 {
                StepDir::Up
            } else {
                StepDir::Down
            };
            if dir != derived {
                return Err(err("freq_step dir disagrees with from_idx/to_idx"));
            }
            TraceEvent::FreqStep {
                at,
                domain,
                from,
                to,
                from_mhz: fields.f64("from_mhz")?,
                to_mhz: fields.f64("to_mhz")?,
                from_mv: fields.f64("from_mv")?,
                to_mv: fields.f64("to_mv")?,
            }
        }
        "queue_histogram" => TraceEvent::QueueHistogram {
            at,
            domain,
            samples: fields.u64("samples")?,
            counts: fields.counts("counts")?,
        },
        other => return Err(err(format!("unknown event kind {other:?}"))),
    };
    Ok((run, event))
}

/// Parses a full JSONL trace back into recordings, grouping lines by run
/// label in first-appearance order (the writer emits runs contiguously,
/// so `parse → render` is the identity on its output). JSONL carries no
/// specs or anchors; those exist only in `.mcdt`.
pub fn parse_jsonl(text: &str) -> Result<Vec<RunRecording>, TraceCodecError> {
    let mut runs: Vec<RunRecording> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (label, event) =
            parse_line(line).map_err(|e| err(format!("line {}: {}", i + 1, e.0)))?;
        match runs.iter_mut().find(|r| r.label == label) {
            Some(run) => run.events.push(event),
            None => runs.push(RunRecording {
                label,
                spec: None,
                events: vec![event],
                anchors: Vec::new(),
            }),
        }
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Controller {
                domain: DomainId::Int,
                event: CtrlEvent::WindowEnter {
                    at: TimePs::new(12_345),
                    signal: SignalKind::Occupancy,
                    value: -0.362_500_000_000_000_04,
                    occupancy: 3,
                    dir: StepDir::Down,
                },
            },
            TraceEvent::Controller {
                domain: DomainId::Fp,
                event: CtrlEvent::RelayArm {
                    at: TimePs::new(12_400),
                    signal: SignalKind::Delta,
                    dir: StepDir::Up,
                    remaining: 2.5,
                },
            },
            TraceEvent::Controller {
                domain: DomainId::Ls,
                event: CtrlEvent::RelayReset {
                    at: TimePs::new(13_000),
                    signal: SignalKind::Occupancy,
                    why: ResetReason::SideFlip,
                },
            },
            TraceEvent::FreqStep {
                at: TimePs::new(14_000),
                domain: DomainId::Int,
                from: OpIndex(100),
                to: OpIndex(96),
                from_mhz: 812.5,
                to_mhz: 800.0,
                from_mv: 1_012.5,
                to_mv: 1_000.0,
            },
            TraceEvent::QueueHistogram {
                at: TimePs::new(20_000),
                domain: DomainId::Ls,
                samples: 41,
                counts: vec![0, 7, 12, 0, 1],
            },
        ]
    }

    #[test]
    fn parse_render_is_the_identity_on_writer_output() {
        let traces = vec![
            ("fig9|adaptive|ops=1000".to_string(), sample_events()),
            (
                "weird \"label\"\\with\u{1}escapes".to_string(),
                sample_events(),
            ),
        ];
        let text = render_jsonl(&traces);
        let parsed = parse_jsonl(&text).expect("writer output parses");
        let roundtrip: Vec<(String, Vec<TraceEvent>)> =
            parsed.into_iter().map(|r| (r.label, r.events)).collect();
        assert_eq!(render_jsonl(&roundtrip), text);
        assert_eq!(roundtrip, traces);
    }

    #[test]
    fn null_value_round_trips_as_nan() {
        let traces = vec![(
            "r".to_string(),
            vec![TraceEvent::Controller {
                domain: DomainId::Int,
                event: CtrlEvent::WindowExit {
                    at: TimePs::new(1),
                    signal: SignalKind::Occupancy,
                    value: f64::NAN,
                    occupancy: 0,
                },
            }],
        )];
        let text = render_jsonl(&traces);
        assert!(text.contains("\"value\":null"));
        let parsed = parse_jsonl(&text).expect("parses");
        let rendered = render_jsonl(
            &parsed
                .into_iter()
                .map(|r| (r.label, r.events))
                .collect::<Vec<_>>(),
        );
        assert_eq!(rendered, text);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad in [
            "{\"run\": \"x\"}", // no domain/kind
            "not json at all",
            "{\"run\": \"x\", \"domain\":\"INT\",\"t_ps\":1,\"kind\":\"nope\"}",
            "{\"run\": \"x\", \"domain\":\"INT\",\"t_ps\":-3,\"kind\":\"relay_fire\"}",
        ] {
            assert!(parse_jsonl(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn dir_field_must_agree_with_indices() {
        let line = "{\"run\": \"x\", \"domain\":\"INT\",\"t_ps\":5,\"kind\":\"freq_step\",\
                    \"dir\":\"up\",\"from_idx\":5,\"to_idx\":3,\"from_mhz\":1,\"to_mhz\":1,\
                    \"from_mv\":1,\"to_mv\":1}";
        assert!(parse_jsonl(line).is_err());
    }
}
