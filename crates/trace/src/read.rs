//! Decoders: the full-file reader, the O(1) footer→index path, and the
//! random-access anchor reader.

use crate::codec::{decode_event, get_opt_str, get_str, read_block, Reader};
use crate::{
    block, err, Anchor, AnchorRef, Episode, RunIndex, RunRecording, TraceCodecError, TraceIndex,
    FOOTER_LEN, FOOTER_MAGIC, MAGIC,
};

/// A fully decoded `.mcdt` file: the event streams plus the index as
/// written (the reader cross-checks them against each other).
#[derive(Debug, Clone, PartialEq)]
pub struct McdtFile {
    /// The decoded runs, in file order.
    pub runs: Vec<RunRecording>,
    /// The trailing index, as stored.
    pub index: TraceIndex,
}

fn footer_index_offset(bytes: &[u8]) -> Result<usize, TraceCodecError> {
    if bytes.len() < MAGIC.len() + FOOTER_LEN {
        return Err(err(format!(
            "{} bytes is too short for a .mcdt file",
            bytes.len()
        )));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(err("missing MCDT1 header magic"));
    }
    let tail = &bytes[bytes.len() - FOOTER_LEN..];
    if &tail[8..] != FOOTER_MAGIC {
        return Err(err("missing MCDTEND1 footer magic (truncated file?)"));
    }
    let offset = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
    let offset = usize::try_from(offset).map_err(|_| err("index offset overflows usize"))?;
    if offset < MAGIC.len() || offset >= bytes.len() - FOOTER_LEN {
        return Err(err(format!("index offset {offset} out of bounds")));
    }
    Ok(offset)
}

fn decode_episode(r: &mut Reader<'_>) -> Result<Episode, TraceCodecError> {
    let domain = usize::from(r.u8()?);
    if domain > 2 {
        return Err(err(format!(
            "bad back-end domain index {domain} in episode"
        )));
    }
    let onset_event_index = r.varint()?;
    let onset_ps = r.varint()?;
    let close_event_index = r.varint()?;
    let close_ps = r.varint()?;
    let reaction_ps = match r.u8()? {
        0 => None,
        1 => Some(r.varint()?),
        b => return Err(err(format!("bad reaction flag {b}"))),
    };
    let relay_resets = r.varint()?;
    let block_offset = r.varint()?;
    Ok(Episode {
        domain,
        onset_event_index,
        onset_ps,
        close_event_index,
        close_ps,
        reaction_ps,
        relay_resets,
        block_offset,
    })
}

fn decode_index(payload: &[u8]) -> Result<TraceIndex, TraceCodecError> {
    let mut r = Reader::new(payload);
    let n = r.varint()?;
    let mut runs = Vec::new();
    for _ in 0..n {
        let label = get_str(&mut r)?;
        let spec = get_opt_str(&mut r)?;
        let start_offset = r.varint()?;
        let event_count = r.varint()?;
        let na = r.varint()?;
        let mut anchors = Vec::new();
        for _ in 0..na {
            anchors.push(AnchorRef {
                event_index: r.varint()?,
                retired: r.varint()?,
                offset: r.varint()?,
            });
        }
        let ne = r.varint()?;
        let mut episodes = Vec::new();
        for _ in 0..ne {
            episodes.push(decode_episode(&mut r)?);
        }
        runs.push(RunIndex {
            label,
            spec,
            start_offset,
            event_count,
            anchors,
            episodes,
        });
    }
    if !r.is_empty() {
        return Err(err("trailing bytes after index payload"));
    }
    Ok(TraceIndex { runs })
}

/// Reads only the trailing index: footer seek, one block decode — O(index
/// size), independent of how many events the file holds.
pub fn read_index(bytes: &[u8]) -> Result<TraceIndex, TraceCodecError> {
    let offset = footer_index_offset(bytes)?;
    let mut r = Reader::at(bytes, offset)?;
    let (kind, payload) = read_block(&mut r)?;
    if kind != block::INDEX {
        return Err(err(format!(
            "block at index offset has kind {kind:#04x}, not index"
        )));
    }
    decode_index(payload)
}

fn decode_anchor(payload: &[u8]) -> Result<Anchor, TraceCodecError> {
    let mut r = Reader::new(payload);
    let event_index = r.varint()?;
    let retired = r.varint()?;
    let len = usize::try_from(r.varint()?).map_err(|_| err("snapshot length overflows usize"))?;
    let snapshot = r.take(len)?.to_vec();
    if !r.is_empty() {
        return Err(err("trailing bytes after anchor payload"));
    }
    Ok(Anchor {
        event_index,
        retired,
        snapshot,
    })
}

/// Random-access read of one anchor block at a file offset taken from the
/// index ([`AnchorRef::offset`]).
pub fn read_anchor_at(bytes: &[u8], offset: u64) -> Result<Anchor, TraceCodecError> {
    let offset = usize::try_from(offset).map_err(|_| err("anchor offset overflows usize"))?;
    let mut r = Reader::at(bytes, offset)?;
    let (kind, payload) = read_block(&mut r)?;
    if kind != block::ANCHOR {
        return Err(err(format!(
            "block at offset {offset} has kind {kind:#04x}, not anchor"
        )));
    }
    decode_anchor(payload)
}

/// Decodes the whole file, verifying every block CRC and cross-checking
/// the stream against the trailing index.
pub fn read_mcdt(bytes: &[u8]) -> Result<McdtFile, TraceCodecError> {
    let index_offset = footer_index_offset(bytes)?;
    let body = &bytes[..index_offset];
    let mut r = Reader::at(body, MAGIC.len())?;
    let mut runs: Vec<RunRecording> = Vec::new();
    let mut prev_t = 0u64;
    while !r.is_empty() {
        let (kind, payload) = read_block(&mut r)?;
        match kind {
            block::RUN_START => {
                let mut p = Reader::new(payload);
                let label = get_str(&mut p)?;
                let spec = get_opt_str(&mut p)?;
                runs.push(RunRecording {
                    label,
                    spec,
                    events: Vec::new(),
                    anchors: Vec::new(),
                });
                prev_t = 0;
            }
            block::EVENTS => {
                if runs.is_empty() {
                    // An engine-driven sink opens one implicit unnamed run.
                    runs.push(RunRecording {
                        label: String::new(),
                        spec: None,
                        events: Vec::new(),
                        anchors: Vec::new(),
                    });
                }
                let run = runs.last_mut().expect("pushed above");
                let mut p = Reader::new(payload);
                let count = p.varint()?;
                for _ in 0..count {
                    run.events.push(decode_event(&mut p, &mut prev_t)?);
                }
                if !p.is_empty() {
                    return Err(err("trailing bytes after events payload"));
                }
            }
            block::ANCHOR => {
                if runs.is_empty() {
                    runs.push(RunRecording {
                        label: String::new(),
                        spec: None,
                        events: Vec::new(),
                        anchors: Vec::new(),
                    });
                }
                let run = runs.last_mut().expect("pushed above");
                run.anchors.push(decode_anchor(payload)?);
            }
            block::INDEX => {
                return Err(err("index block before the footer offset"));
            }
            other => return Err(err(format!("unknown block kind {other:#04x}"))),
        }
    }
    let index = read_index(bytes)?;
    if index.runs.len() != runs.len() {
        return Err(err(format!(
            "index lists {} runs but the stream holds {}",
            index.runs.len(),
            runs.len()
        )));
    }
    for (ri, (run, idx)) in runs.iter().zip(&index.runs).enumerate() {
        if run.label != idx.label {
            return Err(err(format!(
                "run {ri}: stream label {:?} != index label {:?}",
                run.label, idx.label
            )));
        }
        if run.events.len() as u64 != idx.event_count {
            return Err(err(format!(
                "run {ri}: stream holds {} events, index says {}",
                run.events.len(),
                idx.event_count
            )));
        }
        if run.anchors.len() != idx.anchors.len() {
            return Err(err(format!(
                "run {ri}: stream holds {} anchors, index says {}",
                run.anchors.len(),
                idx.anchors.len()
            )));
        }
    }
    Ok(McdtFile { runs, index })
}
