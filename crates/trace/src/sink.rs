//! The streaming `.mcdt` encoder: a [`TraceSink`] that frames events into
//! CRC'd blocks, catalogs episodes as it goes, and appends the seek index
//! on finish.

use mcd_sim::{TraceEvent, TraceSink};

use crate::codec::{encode_event, event_t_ps, put_opt_str, put_str, put_varint, write_block};
use crate::episodes::EpisodeTracker;
use crate::{
    block, Anchor, AnchorRef, Episode, RunIndex, RunRecording, TraceIndex, EVENTS_PER_BLOCK,
    FOOTER_MAGIC, MAGIC,
};

struct CurRun {
    label: String,
    spec: Option<String>,
    start_offset: u64,
    /// Wire-form events of the open (unflushed) block.
    block: Vec<u8>,
    block_events: u64,
    /// File offset the open block will land at. Valid because nothing
    /// else is appended to the file until this block flushes — anchors,
    /// run starts and the index all flush it first.
    block_offset: u64,
    prev_t: u64,
    event_index: u64,
    last_t: u64,
    anchors: Vec<AnchorRef>,
    tracker: EpisodeTracker,
}

/// An incremental `.mcdt` writer implementing [`TraceSink`].
///
/// Call [`BinarySink::start_run`] before each run's events (a sink driven
/// directly by the engine without one gets a single implicit unnamed
/// run), then [`BinarySink::finish`] to append the index and footer.
pub struct BinarySink {
    buf: Vec<u8>,
    runs: Vec<RunIndex>,
    events_total: u64,
    anchors_total: u64,
    cur: Option<CurRun>,
}

impl Default for BinarySink {
    fn default() -> Self {
        BinarySink::new()
    }
}

impl BinarySink {
    /// A fresh sink holding only the file header.
    pub fn new() -> Self {
        BinarySink {
            buf: MAGIC.to_vec(),
            runs: Vec::new(),
            events_total: 0,
            anchors_total: 0,
            cur: None,
        }
    }

    /// Opens a run: closes any previous one and writes its start block.
    pub fn start_run(&mut self, label: &str, spec: Option<&str>) {
        self.close_run();
        let start_offset = self.buf.len() as u64;
        let mut payload = Vec::with_capacity(label.len() + 16);
        put_str(&mut payload, label);
        put_opt_str(&mut payload, spec);
        write_block(&mut self.buf, block::RUN_START, &payload);
        self.cur = Some(CurRun {
            label: label.to_string(),
            spec: spec.map(str::to_string),
            start_offset,
            block: Vec::new(),
            block_events: 0,
            block_offset: 0,
            prev_t: 0,
            event_index: 0,
            last_t: 0,
            anchors: Vec::new(),
            tracker: EpisodeTracker::default(),
        });
    }

    fn cur_mut(&mut self) -> &mut CurRun {
        if self.cur.is_none() {
            self.start_run("", None);
        }
        self.cur.as_mut().expect("run opened above")
    }

    fn flush_block(&mut self) {
        let Some(cur) = self.cur.as_mut() else { return };
        if cur.block_events == 0 {
            return;
        }
        let mut payload = Vec::with_capacity(cur.block.len() + 4);
        put_varint(&mut payload, cur.block_events);
        payload.extend_from_slice(&cur.block);
        write_block(&mut self.buf, block::EVENTS, &payload);
        cur.block.clear();
        cur.block_events = 0;
    }

    fn close_run(&mut self) {
        self.flush_block();
        let Some(cur) = self.cur.take() else { return };
        self.runs.push(RunIndex {
            label: cur.label,
            spec: cur.spec,
            start_offset: cur.start_offset,
            event_count: cur.event_index,
            anchors: cur.anchors,
            episodes: cur.tracker.finish(cur.event_index, cur.last_t),
        });
    }

    /// Events recorded so far, across all runs.
    pub fn events_recorded(&self) -> u64 {
        self.events_total
    }

    /// Anchors recorded so far, across all runs.
    pub fn anchors_recorded(&self) -> u64 {
        self.anchors_total
    }

    /// Bytes framed so far (excludes the open block and the index).
    pub fn bytes_framed(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Closes the open run, appends the index block and footer, and
    /// returns the finished file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.close_run();
        let index_offset = self.buf.len() as u64;
        let payload = encode_index(&TraceIndex {
            runs: std::mem::take(&mut self.runs),
        });
        write_block(&mut self.buf, block::INDEX, &payload);
        self.buf.extend_from_slice(&index_offset.to_le_bytes());
        self.buf.extend_from_slice(FOOTER_MAGIC);
        self.buf
    }
}

impl TraceSink for BinarySink {
    fn record(&mut self, event: &TraceEvent) {
        let buf_len = self.buf.len() as u64;
        self.events_total += 1;
        let cur = self.cur_mut();
        if cur.block_events == 0 {
            cur.block_offset = buf_len;
        }
        cur.tracker
            .observe(cur.event_index, cur.block_offset, event);
        encode_event(&mut cur.block, &mut cur.prev_t, event);
        cur.last_t = event_t_ps(event);
        cur.event_index += 1;
        cur.block_events += 1;
        if cur.block_events >= EVENTS_PER_BLOCK {
            self.flush_block();
        }
    }

    fn record_anchor(&mut self, retired: u64, snapshot: &[u8]) {
        // Touch the current run first so an anchor before any event still
        // opens the implicit run, then seal the open event block — the
        // anchor must sit between blocks for its offset to be seekable.
        let _ = self.cur_mut();
        self.flush_block();
        let offset = self.buf.len() as u64;
        let cur = self.cur.as_mut().expect("run opened above");
        let mut payload = Vec::with_capacity(snapshot.len() + 16);
        put_varint(&mut payload, cur.event_index);
        put_varint(&mut payload, retired);
        put_varint(&mut payload, snapshot.len() as u64);
        payload.extend_from_slice(snapshot);
        write_block(&mut self.buf, block::ANCHOR, &payload);
        cur.anchors.push(AnchorRef {
            event_index: cur.event_index,
            retired,
            offset,
        });
        self.anchors_total += 1;
    }
}

fn encode_episode(buf: &mut Vec<u8>, e: &Episode) {
    buf.push(e.domain as u8);
    put_varint(buf, e.onset_event_index);
    put_varint(buf, e.onset_ps);
    put_varint(buf, e.close_event_index);
    put_varint(buf, e.close_ps);
    match e.reaction_ps {
        Some(r) => {
            buf.push(1);
            put_varint(buf, r);
        }
        None => buf.push(0),
    }
    put_varint(buf, e.relay_resets);
    put_varint(buf, e.block_offset);
}

pub(crate) fn encode_index(index: &TraceIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    put_varint(&mut buf, index.runs.len() as u64);
    for run in &index.runs {
        put_str(&mut buf, &run.label);
        put_opt_str(&mut buf, run.spec.as_deref());
        put_varint(&mut buf, run.start_offset);
        put_varint(&mut buf, run.event_count);
        put_varint(&mut buf, run.anchors.len() as u64);
        for a in &run.anchors {
            put_varint(&mut buf, a.event_index);
            put_varint(&mut buf, a.retired);
            put_varint(&mut buf, a.offset);
        }
        put_varint(&mut buf, run.episodes.len() as u64);
        for e in &run.episodes {
            encode_episode(&mut buf, e);
        }
    }
    buf
}

/// Encodes finished recordings into one `.mcdt` file, interleaving each
/// run's anchors at their recorded event positions.
pub fn write_mcdt(runs: &[RunRecording]) -> Vec<u8> {
    let mut sink = BinarySink::new();
    for run in runs {
        sink.start_run(&run.label, run.spec.as_deref());
        let mut ai = 0usize;
        let place = |sink: &mut BinarySink, a: &Anchor| {
            sink.record_anchor(a.retired, &a.snapshot);
        };
        for (i, ev) in run.events.iter().enumerate() {
            while ai < run.anchors.len() && run.anchors[ai].event_index <= i as u64 {
                place(&mut sink, &run.anchors[ai]);
                ai += 1;
            }
            sink.record(ev);
        }
        while ai < run.anchors.len() {
            place(&mut sink, &run.anchors[ai]);
            ai += 1;
        }
    }
    sink.finish()
}
