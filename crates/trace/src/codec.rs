//! Primitive encoders/decoders: LEB128 varints, zigzag deltas, CRC32
//! framing, and the per-event wire form shared by files and stream frames.

use mcd_power::{OpIndex, TimePs};
use mcd_sim::{CtrlEvent, DomainId, ResetReason, SignalKind, StepDir, TraceEvent};

use crate::{err, TraceCodecError};

// ---------------------------------------------------------------- varint

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Maps signed deltas onto varint-friendly unsigned values (0, -1, 1, -2 →
/// 0, 1, 2, 3). Timestamps are monotone per run so deltas are almost
/// always positive, but replayed edge batches can interleave domains;
/// zigzag keeps the rare negative delta cheap instead of 10 bytes.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ----------------------------------------------------------------- crc32

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial), the integrity check on every block.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------- reader

/// A bounds-checked cursor over an immutable byte slice.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn at(bytes: &'a [u8], pos: usize) -> Result<Self, TraceCodecError> {
        if pos > bytes.len() {
            return Err(err(format!(
                "offset {pos} past end of {}-byte stream",
                bytes.len()
            )));
        }
        Ok(Reader { bytes, pos })
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TraceCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                err(format!(
                    "truncated: wanted {n} bytes at offset {}",
                    self.pos
                ))
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TraceCodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32le(&mut self) -> Result<u32, TraceCodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn f64bits(&mut self) -> Result<f64, TraceCodecError> {
        let b = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])))
    }

    pub(crate) fn varint(&mut self) -> Result<u64, TraceCodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(err("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(err("varint longer than 10 bytes"));
            }
        }
    }
}

// ---------------------------------------------------------------- blocks

/// Appends one framed block: `[kind][varint len][payload][crc32le]`.
pub(crate) fn write_block(buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    buf.push(kind);
    put_varint(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Reads one framed block, verifying its CRC.
pub(crate) fn read_block<'a>(r: &mut Reader<'a>) -> Result<(u8, &'a [u8]), TraceCodecError> {
    let kind = r.u8()?;
    let len = r.varint()?;
    let len = usize::try_from(len).map_err(|_| err("block length overflows usize"))?;
    let payload = r.take(len)?;
    let want = r.u32le()?;
    let got = crc32(payload);
    if want != got {
        return Err(err(format!(
            "crc mismatch on block kind {kind:#04x}: stored {want:#010x}, computed {got:#010x}"
        )));
    }
    Ok((kind, payload))
}

// ------------------------------------------------------------ strings

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(r: &mut Reader<'_>) -> Result<String, TraceCodecError> {
    let len = r.varint()?;
    let len = usize::try_from(len).map_err(|_| err("string length overflows usize"))?;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| err("string is not UTF-8"))
}

pub(crate) fn put_opt_str(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
        None => buf.push(0),
    }
}

pub(crate) fn get_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, TraceCodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_str(r)?)),
        b => Err(err(format!("bad optional-string flag {b}"))),
    }
}

// ----------------------------------------------------------- enum bytes

const TAG_WINDOW_ENTER: u8 = 0;
const TAG_WINDOW_EXIT: u8 = 1;
const TAG_RELAY_ARM: u8 = 2;
const TAG_RELAY_FIRE: u8 = 3;
const TAG_RELAY_RESET: u8 = 4;
const TAG_FREQ_STEP: u8 = 5;
const TAG_QUEUE_HISTOGRAM: u8 = 6;

pub(crate) fn domain_from_index(i: u8) -> Result<DomainId, TraceCodecError> {
    match i {
        0 => Ok(DomainId::FrontEnd),
        1 => Ok(DomainId::Int),
        2 => Ok(DomainId::Fp),
        3 => Ok(DomainId::Ls),
        _ => Err(err(format!("bad domain index {i}"))),
    }
}

fn signal_byte(s: SignalKind) -> u8 {
    s.index() as u8
}

fn signal_from(b: u8) -> Result<SignalKind, TraceCodecError> {
    match b {
        0 => Ok(SignalKind::Occupancy),
        1 => Ok(SignalKind::Delta),
        _ => Err(err(format!("bad signal byte {b}"))),
    }
}

fn dir_byte(d: StepDir) -> u8 {
    match d {
        StepDir::Up => 0,
        StepDir::Down => 1,
    }
}

fn dir_from(b: u8) -> Result<StepDir, TraceCodecError> {
    match b {
        0 => Ok(StepDir::Up),
        1 => Ok(StepDir::Down),
        _ => Err(err(format!("bad direction byte {b}"))),
    }
}

fn why_byte(w: ResetReason) -> u8 {
    match w {
        ResetReason::BackInside => 0,
        ResetReason::SideFlip => 1,
        ResetReason::Cancelled => 2,
        ResetReason::Acted => 3,
    }
}

fn why_from(b: u8) -> Result<ResetReason, TraceCodecError> {
    match b {
        0 => Ok(ResetReason::BackInside),
        1 => Ok(ResetReason::SideFlip),
        2 => Ok(ResetReason::Cancelled),
        3 => Ok(ResetReason::Acted),
        _ => Err(err(format!("bad reset-reason byte {b}"))),
    }
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ------------------------------------------------------------ the event

/// The domain an event is attributed to.
pub(crate) fn event_domain(ev: &TraceEvent) -> DomainId {
    match ev {
        TraceEvent::Controller { domain, .. }
        | TraceEvent::FreqStep { domain, .. }
        | TraceEvent::QueueHistogram { domain, .. } => *domain,
    }
}

/// The event's sample time in picoseconds.
pub(crate) fn event_t_ps(ev: &TraceEvent) -> u64 {
    match ev {
        TraceEvent::Controller { event, .. } => event.at().as_ps(),
        TraceEvent::FreqStep { at, .. } | TraceEvent::QueueHistogram { at, .. } => at.as_ps(),
    }
}

/// Appends one event in wire form: `[tag][domain][zigzag Δt][fields…]`.
/// `prev_t` carries the running timestamp; deltas are wrapping so any
/// `u64` pair round-trips.
pub(crate) fn encode_event(buf: &mut Vec<u8>, prev_t: &mut u64, ev: &TraceEvent) {
    let t = event_t_ps(ev);
    let dt = t.wrapping_sub(*prev_t) as i64;
    *prev_t = t;
    let (tag, ctrl) = match ev {
        TraceEvent::Controller { event, .. } => match event {
            CtrlEvent::WindowEnter { .. } => (TAG_WINDOW_ENTER, Some(event)),
            CtrlEvent::WindowExit { .. } => (TAG_WINDOW_EXIT, Some(event)),
            CtrlEvent::RelayArm { .. } => (TAG_RELAY_ARM, Some(event)),
            CtrlEvent::RelayFire { .. } => (TAG_RELAY_FIRE, Some(event)),
            CtrlEvent::RelayReset { .. } => (TAG_RELAY_RESET, Some(event)),
        },
        TraceEvent::FreqStep { .. } => (TAG_FREQ_STEP, None),
        TraceEvent::QueueHistogram { .. } => (TAG_QUEUE_HISTOGRAM, None),
    };
    buf.push(tag);
    buf.push(event_domain(ev).index() as u8);
    put_varint(buf, zigzag(dt));
    match (ctrl, ev) {
        (
            Some(CtrlEvent::WindowEnter {
                signal,
                value,
                occupancy,
                dir,
                ..
            }),
            _,
        ) => {
            buf.push(signal_byte(*signal));
            buf.push(dir_byte(*dir));
            put_varint(buf, u64::from(*occupancy));
            put_f64(buf, *value);
        }
        (
            Some(CtrlEvent::WindowExit {
                signal,
                value,
                occupancy,
                ..
            }),
            _,
        ) => {
            buf.push(signal_byte(*signal));
            put_varint(buf, u64::from(*occupancy));
            put_f64(buf, *value);
        }
        (
            Some(CtrlEvent::RelayArm {
                signal,
                dir,
                remaining,
                ..
            }),
            _,
        ) => {
            buf.push(signal_byte(*signal));
            buf.push(dir_byte(*dir));
            put_f64(buf, *remaining);
        }
        (Some(CtrlEvent::RelayFire { signal, dir, .. }), _) => {
            buf.push(signal_byte(*signal));
            buf.push(dir_byte(*dir));
        }
        (Some(CtrlEvent::RelayReset { signal, why, .. }), _) => {
            buf.push(signal_byte(*signal));
            buf.push(why_byte(*why));
        }
        (
            None,
            TraceEvent::FreqStep {
                from,
                to,
                from_mhz,
                to_mhz,
                from_mv,
                to_mv,
                ..
            },
        ) => {
            put_varint(buf, u64::from(from.0));
            put_varint(buf, u64::from(to.0));
            put_f64(buf, *from_mhz);
            put_f64(buf, *to_mhz);
            put_f64(buf, *from_mv);
            put_f64(buf, *to_mv);
        }
        (
            None,
            TraceEvent::QueueHistogram {
                samples, counts, ..
            },
        ) => {
            put_varint(buf, *samples);
            put_varint(buf, counts.len() as u64);
            for &c in counts {
                put_varint(buf, c);
            }
        }
        _ => unreachable!("tag/event pairing is exhaustive"),
    }
}

/// Inverse of [`encode_event`].
pub(crate) fn decode_event(
    r: &mut Reader<'_>,
    prev_t: &mut u64,
) -> Result<TraceEvent, TraceCodecError> {
    let tag = r.u8()?;
    let domain = domain_from_index(r.u8()?)?;
    let dt = unzigzag(r.varint()?);
    let t = prev_t.wrapping_add(dt as u64);
    *prev_t = t;
    let at = TimePs::new(t);
    let ctrl = |event: CtrlEvent| TraceEvent::Controller { domain, event };
    Ok(match tag {
        TAG_WINDOW_ENTER => {
            let signal = signal_from(r.u8()?)?;
            let dir = dir_from(r.u8()?)?;
            let occupancy = u32::try_from(r.varint()?).map_err(|_| err("occupancy > u32"))?;
            let value = r.f64bits()?;
            ctrl(CtrlEvent::WindowEnter {
                at,
                signal,
                value,
                occupancy,
                dir,
            })
        }
        TAG_WINDOW_EXIT => {
            let signal = signal_from(r.u8()?)?;
            let occupancy = u32::try_from(r.varint()?).map_err(|_| err("occupancy > u32"))?;
            let value = r.f64bits()?;
            ctrl(CtrlEvent::WindowExit {
                at,
                signal,
                value,
                occupancy,
            })
        }
        TAG_RELAY_ARM => {
            let signal = signal_from(r.u8()?)?;
            let dir = dir_from(r.u8()?)?;
            let remaining = r.f64bits()?;
            ctrl(CtrlEvent::RelayArm {
                at,
                signal,
                dir,
                remaining,
            })
        }
        TAG_RELAY_FIRE => {
            let signal = signal_from(r.u8()?)?;
            let dir = dir_from(r.u8()?)?;
            ctrl(CtrlEvent::RelayFire { at, signal, dir })
        }
        TAG_RELAY_RESET => {
            let signal = signal_from(r.u8()?)?;
            let why = why_from(r.u8()?)?;
            ctrl(CtrlEvent::RelayReset { at, signal, why })
        }
        TAG_FREQ_STEP => {
            let from = OpIndex(u16::try_from(r.varint()?).map_err(|_| err("op index > u16"))?);
            let to = OpIndex(u16::try_from(r.varint()?).map_err(|_| err("op index > u16"))?);
            let from_mhz = r.f64bits()?;
            let to_mhz = r.f64bits()?;
            let from_mv = r.f64bits()?;
            let to_mv = r.f64bits()?;
            TraceEvent::FreqStep {
                at,
                domain,
                from,
                to,
                from_mhz,
                to_mhz,
                from_mv,
                to_mv,
            }
        }
        TAG_QUEUE_HISTOGRAM => {
            let samples = r.varint()?;
            let n = usize::try_from(r.varint()?).map_err(|_| err("counts length > usize"))?;
            let mut counts = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                counts.push(r.varint()?);
            }
            TraceEvent::QueueHistogram {
                at,
                domain,
                samples,
                counts,
            }
        }
        other => return Err(err(format!("unknown event tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 145_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical check: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn block_crc_detects_corruption() {
        let mut buf = Vec::new();
        write_block(&mut buf, block_kind(), b"payload");
        let n = buf.len();
        buf[n - 6] ^= 0x01; // flip a payload byte
        let mut r = Reader::new(&buf);
        assert!(read_block(&mut r).is_err());
    }

    fn block_kind() -> u8 {
        crate::block::EVENTS
    }

    #[test]
    fn wrapping_delta_handles_out_of_order_timestamps() {
        let ev1 = TraceEvent::FreqStep {
            at: TimePs::new(1_000),
            domain: DomainId::Int,
            from: OpIndex(3),
            to: OpIndex(1),
            from_mhz: 900.0,
            to_mhz: 700.0,
            from_mv: 1_000.0,
            to_mv: 900.0,
        };
        let ev2 = TraceEvent::QueueHistogram {
            at: TimePs::new(5), // earlier than ev1: negative delta
            domain: DomainId::Fp,
            samples: 7,
            counts: vec![1, 0, 3],
        };
        let mut buf = Vec::new();
        let mut t = 0u64;
        encode_event(&mut buf, &mut t, &ev1);
        encode_event(&mut buf, &mut t, &ev2);
        let mut r = Reader::new(&buf);
        let mut t = 0u64;
        assert_eq!(decode_event(&mut r, &mut t).unwrap(), ev1);
        assert_eq!(decode_event(&mut r, &mut t).unwrap(), ev2);
        assert!(r.is_empty());
    }
}
