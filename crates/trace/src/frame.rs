//! Self-contained stream frames: the live-watch wire format `mcd-serve`
//! sends to `Accept: application/x-mcdt` clients. Each frame is one CRC'd
//! block carrying either a labeled event (absolute timestamp — frames
//! must survive joining mid-stream) or a meta line (the final report
//! line, identical text to the NDJSON wire).

use mcd_sim::TraceEvent;

use crate::codec::{decode_event, encode_event, get_str, put_str, read_block, write_block, Reader};
use crate::{err, TraceCodecError};

/// Frame kind byte: a labeled trace event.
pub const FRAME_EVENT: u8 = 0xE1;
/// Frame kind byte: a meta/report line (UTF-8 text payload).
pub const FRAME_META: u8 = 0xE0;

/// A decoded stream frame.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFrame {
    /// One trace event, tagged with the run label that produced it.
    Event {
        /// The harness run label.
        label: String,
        /// The event.
        event: TraceEvent,
    },
    /// A non-event line (the stream's final report line).
    Meta {
        /// The line text, without a trailing newline.
        line: String,
    },
}

/// Encodes one event frame. Timestamps are absolute (`prev_t = 0`), so
/// every frame decodes on its own.
pub fn encode_event_frame(label: &str, event: &TraceEvent) -> Vec<u8> {
    let mut payload = Vec::with_capacity(label.len() + 32);
    put_str(&mut payload, label);
    let mut t = 0u64;
    encode_event(&mut payload, &mut t, event);
    let mut out = Vec::with_capacity(payload.len() + 8);
    write_block(&mut out, FRAME_EVENT, &payload);
    out
}

/// Encodes one meta frame wrapping a text line.
pub fn encode_meta_frame(line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(line.len() + 8);
    write_block(&mut out, FRAME_META, line.as_bytes());
    out
}

/// Decodes the frame at the head of `bytes`, returning it and the number
/// of bytes consumed (so callers can walk a concatenated stream).
pub fn decode_frame(bytes: &[u8]) -> Result<(StreamFrame, usize), TraceCodecError> {
    let mut r = Reader::new(bytes);
    let (kind, payload) = read_block(&mut r)?;
    let frame = match kind {
        FRAME_EVENT => {
            let mut p = Reader::new(payload);
            let label = get_str(&mut p)?;
            let mut t = 0u64;
            let event = decode_event(&mut p, &mut t)?;
            if !p.is_empty() {
                return Err(err("trailing bytes after event frame payload"));
            }
            StreamFrame::Event { label, event }
        }
        FRAME_META => StreamFrame::Meta {
            line: String::from_utf8(payload.to_vec())
                .map_err(|_| err("meta frame is not UTF-8"))?,
        },
        other => return Err(err(format!("unknown frame kind {other:#04x}"))),
    };
    Ok((frame, r.pos()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::TimePs;
    use mcd_sim::{CtrlEvent, DomainId, SignalKind, StepDir};

    #[test]
    fn frames_round_trip_and_concatenate() {
        let ev = TraceEvent::Controller {
            domain: DomainId::Fp,
            event: CtrlEvent::RelayFire {
                at: TimePs::new(987_654_321),
                signal: SignalKind::Delta,
                dir: StepDir::Up,
            },
        };
        let mut wire = encode_event_frame("run|a", &ev);
        wire.extend_from_slice(&encode_meta_frame("{\"done\":true}"));
        let (f1, n1) = decode_frame(&wire).expect("first frame");
        assert_eq!(
            f1,
            StreamFrame::Event {
                label: "run|a".into(),
                event: ev
            }
        );
        let (f2, n2) = decode_frame(&wire[n1..]).expect("second frame");
        assert_eq!(
            f2,
            StreamFrame::Meta {
                line: "{\"done\":true}".into()
            }
        );
        assert_eq!(n1 + n2, wire.len());
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let ev = TraceEvent::QueueHistogram {
            at: TimePs::new(5),
            domain: DomainId::Ls,
            samples: 2,
            counts: vec![1, 1],
        };
        let mut wire = encode_event_frame("r", &ev);
        let n = wire.len();
        wire[n / 2] ^= 0xff;
        assert!(decode_frame(&wire).is_err());
    }
}
