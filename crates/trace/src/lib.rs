//! Flight-recorder trace codec: the `.mcdt` binary format.
//!
//! The PR 2 trace layer serializes controller events as JSON lines — easy
//! to grep, expensive to store, and impossible to seek. This crate defines
//! the compact self-describing binary format the harness records into:
//!
//! * **Framed blocks with CRC.** A `.mcdt` file is a magic header followed
//!   by `[kind][varint len][payload][crc32]` blocks: run starts, event
//!   batches (varint-delta timestamps, interned domain/signal ids, raw
//!   IEEE-754 bits for lossless `f64` round-trips), snapshot anchors, and
//!   one trailing index. A fixed-size footer points at the index so
//!   readers seek to it in O(1) without scanning the stream.
//! * **Episode catalog.** While encoding, [`BinarySink`] replays the same
//!   deviation-onset bookkeeping as `trace analyze`: every window
//!   enter→exit episode lands in the index with onset time, reaction
//!   time, relay resets and the file offset of the block holding its
//!   onset — episode queries against a `.mcdt` file never decode events.
//! * **Anchors for time-travel.** The sharded runner drops `Machine`
//!   snapshots at shard boundaries through
//!   [`TraceSink::record_anchor`]; the index records where they landed so
//!   a replay can restore the nearest anchor and re-simulate just the
//!   segment around an episode.
//! * **Lossless JSONL interop.** [`render_jsonl`] emits byte-identical
//!   output to the PR 2 writer, and [`parse_jsonl`] inverts it exactly
//!   (shortest-round-trip `f64` text both ways), so `.mcdt` ⇄ JSONL
//!   conversion is proven by byte comparison, not by eyeballing.
//!
//! [`TraceSink::record_anchor`]: mcd_sim::TraceSink::record_anchor

use std::fmt;

pub use mcd_sim::TraceEvent;

mod codec;
mod episodes;
mod frame;
mod jsonl;
mod read;
mod sink;

pub use episodes::{catalog_episodes, Episode};
pub use frame::{decode_frame, encode_event_frame, encode_meta_frame, StreamFrame};
pub use jsonl::{json_escape, parse_jsonl, render_jsonl};
pub use read::{read_anchor_at, read_index, read_mcdt, McdtFile};
pub use sink::{write_mcdt, BinarySink};

/// File-level magic prefix of a `.mcdt` stream.
pub const MAGIC: &[u8; 6] = b"MCDT1\n";
/// Trailing magic; the 8 bytes before it are the little-endian index offset.
pub const FOOTER_MAGIC: &[u8; 8] = b"MCDTEND1";
/// Total footer size: `u64` index offset + [`FOOTER_MAGIC`].
pub const FOOTER_LEN: usize = 8 + FOOTER_MAGIC.len();

/// Block kinds, one byte each, leading every frame.
pub mod block {
    /// Starts a run: label + optional replay spec.
    pub const RUN_START: u8 = 0x01;
    /// A batch of delta-encoded events.
    pub const EVENTS: u8 = 0x02;
    /// A resumable machine snapshot between events.
    pub const ANCHOR: u8 = 0x03;
    /// The trailing seek index (exactly one, last block in the file).
    pub const INDEX: u8 = 0x04;
}

/// Events per [`block::EVENTS`] frame before the encoder flushes — small
/// enough that a block is a cheap decode unit, large enough that framing
/// overhead (6-ish bytes + CRC) vanishes against the payload.
pub const EVENTS_PER_BLOCK: u64 = 4096;

/// A decode/encode failure: corrupt framing, CRC mismatch, unknown tags,
/// or JSONL text that is not the PR 2 trace shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCodecError(pub String);

impl fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace codec: {}", self.0)
    }
}

impl std::error::Error for TraceCodecError {}

pub(crate) fn err(msg: impl Into<String>) -> TraceCodecError {
    TraceCodecError(msg.into())
}

/// A snapshot anchor carried inside a recording: the machine state at
/// `event_index` (i.e. after that many events of its run were emitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anchor {
    /// Events of the owning run emitted before this snapshot was taken.
    pub event_index: u64,
    /// Retired-instruction count at the snapshot point.
    pub retired: u64,
    /// The serialized machine state (`mcd-snap` codec bytes).
    pub snapshot: Vec<u8>,
}

/// One run's worth of recorded material: the label the harness filed it
/// under, an optional replay spec (flat JSON describing how to rebuild
/// the machine), the event stream, and any snapshot anchors.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecording {
    /// The harness run label (`benchmark|scheme|ops=..|..`).
    pub label: String,
    /// Flat-JSON replay spec, when the harness knows how to rebuild the
    /// run from scratch; absent for ad-hoc custom runs.
    pub spec: Option<String>,
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Snapshot anchors, ordered by `event_index`.
    pub anchors: Vec<Anchor>,
}

/// Where an anchor landed in the file (the index entry; the snapshot
/// bytes themselves live in the [`block::ANCHOR`] block at `offset`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorRef {
    /// Events of the owning run emitted before the snapshot.
    pub event_index: u64,
    /// Retired-instruction count at the snapshot point.
    pub retired: u64,
    /// File offset of the anchor block.
    pub offset: u64,
}

/// One run's entry in the trailing index.
#[derive(Debug, Clone, PartialEq)]
pub struct RunIndex {
    /// The harness run label.
    pub label: String,
    /// The replay spec, if one was recorded.
    pub spec: Option<String>,
    /// File offset of the run's [`block::RUN_START`] block.
    pub start_offset: u64,
    /// Total events recorded for the run.
    pub event_count: u64,
    /// Anchor locations, ordered by `event_index`.
    pub anchors: Vec<AnchorRef>,
    /// The episode catalog, in onset order.
    pub episodes: Vec<Episode>,
}

/// The trailing seek index of a `.mcdt` file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceIndex {
    /// Per-run entries, in file order.
    pub runs: Vec<RunIndex>,
}

impl TraceIndex {
    /// Total episodes across all runs.
    pub fn episode_count(&self) -> usize {
        self.runs.iter().map(|r| r.episodes.len()).sum()
    }

    /// Resolves a global episode ordinal (catalog order: runs in file
    /// order, episodes in onset order) to `(run index, episode index)`.
    pub fn locate_episode(&self, k: usize) -> Option<(usize, usize)> {
        let mut seen = 0;
        for (ri, run) in self.runs.iter().enumerate() {
            if k < seen + run.episodes.len() {
                return Some((ri, k - seen));
            }
            seen += run.episodes.len();
        }
        None
    }
}
