//! The episode catalog: deviation-window enter→exit spans with reaction
//! times, computed with exactly the onset bookkeeping `trace analyze`
//! and the telemetry sink use, so catalog aggregates always agree with
//! the analyzer's reaction-time report.

use mcd_sim::{CtrlEvent, DomainId, TraceEvent};

/// One controller episode: the span from a domain's first deviation-window
/// entry (with no other onset pending) to the frequency step that answered
/// it — or to the window exit that abandoned it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// Back-end domain index (0 = INT, 1 = FP, 2 = LS).
    pub domain: usize,
    /// Index (within the run's event stream) of the opening `window_enter`.
    pub onset_event_index: u64,
    /// Sample time of the opening `window_enter`, picoseconds.
    pub onset_ps: u64,
    /// Index of the event that closed the episode (`freq_step` if it
    /// reacted, the final `window_exit` if it was abandoned, or one past
    /// the last event if the run ended mid-episode).
    pub close_event_index: u64,
    /// Sample time of the closing event, picoseconds.
    pub close_ps: u64,
    /// Onset→step reaction time, picoseconds; `None` if the signal
    /// returned inside its window (or the run ended) before any step.
    pub reaction_ps: Option<u64>,
    /// Time-delay relay resets observed while the episode was active.
    pub relay_resets: u64,
    /// File offset of the events block holding the onset (0 when the
    /// catalog was computed from an in-memory stream).
    pub block_offset: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenEpisode {
    start_event_index: u64,
    start_ps: u64,
    block_offset: u64,
    resets: u64,
}

/// Streaming episode tracker. Feed it every event of one run, in order,
/// then call [`EpisodeTracker::finish`].
#[derive(Debug, Default)]
pub(crate) struct EpisodeTracker {
    /// Pending onset time per (back-end domain, signal) — the analyzer's
    /// rule: a window entry records an onset only if that slot is empty.
    onsets: [[Option<u64>; 2]; 3],
    open: [Option<OpenEpisode>; 3],
    episodes: Vec<Episode>,
}

fn backend_index(domain: DomainId) -> Option<usize> {
    match domain {
        DomainId::FrontEnd => None,
        d => Some(d.backend_index()),
    }
}

impl EpisodeTracker {
    /// Observes the `idx`-th event of the run; `block_offset` is where the
    /// events block holding it will land in the file.
    pub(crate) fn observe(&mut self, idx: u64, block_offset: u64, ev: &TraceEvent) {
        match ev {
            TraceEvent::Controller { domain, event } => {
                let Some(bi) = backend_index(*domain) else {
                    return;
                };
                match *event {
                    CtrlEvent::WindowEnter { at, signal, .. } => {
                        let t = at.as_ps();
                        if self.open[bi].is_none() {
                            self.open[bi] = Some(OpenEpisode {
                                start_event_index: idx,
                                start_ps: t,
                                block_offset,
                                resets: 0,
                            });
                        }
                        let slot = &mut self.onsets[bi][signal.index()];
                        if slot.is_none() {
                            *slot = Some(t);
                        }
                    }
                    CtrlEvent::WindowExit { at, signal, .. } => {
                        let had = self.onsets[bi].iter().any(Option::is_some);
                        self.onsets[bi][signal.index()] = None;
                        let all_clear = self.onsets[bi].iter().all(Option::is_none);
                        if had && all_clear {
                            if let Some(open) = self.open[bi].take() {
                                self.close(bi, open, idx, at.as_ps(), None);
                            }
                        }
                    }
                    CtrlEvent::RelayReset { .. } => {
                        if let Some(open) = self.open[bi].as_mut() {
                            open.resets += 1;
                        }
                    }
                    CtrlEvent::RelayArm { .. } | CtrlEvent::RelayFire { .. } => {}
                }
            }
            TraceEvent::FreqStep { at, domain, .. } => {
                let Some(bi) = backend_index(*domain) else {
                    return;
                };
                let onset = self.onsets[bi].iter().flatten().min().copied();
                if let Some(onset) = onset {
                    let t = at.as_ps();
                    self.onsets[bi] = [None, None];
                    if let Some(open) = self.open[bi].take() {
                        self.close(bi, open, idx, t, Some(t.saturating_sub(onset)));
                    }
                }
            }
            TraceEvent::QueueHistogram { .. } => {}
        }
    }

    fn close(
        &mut self,
        bi: usize,
        open: OpenEpisode,
        close_idx: u64,
        close_ps: u64,
        reaction_ps: Option<u64>,
    ) {
        self.episodes.push(Episode {
            domain: bi,
            onset_event_index: open.start_event_index,
            onset_ps: open.start_ps,
            close_event_index: close_idx,
            close_ps,
            reaction_ps,
            relay_resets: open.resets,
            block_offset: open.block_offset,
        });
    }

    /// Closes episodes still open when the run ends (abandoned, closed at
    /// one past the last event) and returns the catalog in onset order.
    pub(crate) fn finish(mut self, event_count: u64, last_t_ps: u64) -> Vec<Episode> {
        for bi in 0..3 {
            if let Some(open) = self.open[bi].take() {
                self.close(bi, open, event_count, last_t_ps, None);
            }
        }
        self.episodes
            .sort_by_key(|e| (e.onset_event_index, e.domain, e.close_event_index));
        self.episodes
    }
}

/// Computes the episode catalog of one run's in-memory event stream
/// (block offsets are 0 — there is no file).
pub fn catalog_episodes(events: &[TraceEvent]) -> Vec<Episode> {
    let mut tracker = EpisodeTracker::default();
    let mut last_t = 0u64;
    for (i, ev) in events.iter().enumerate() {
        tracker.observe(i as u64, 0, ev);
        last_t = crate::codec::event_t_ps(ev);
    }
    tracker.finish(events.len() as u64, last_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_power::TimePs;
    use mcd_sim::{SignalKind, StepDir};

    fn enter(t: u64, domain: DomainId, signal: SignalKind) -> TraceEvent {
        TraceEvent::Controller {
            domain,
            event: CtrlEvent::WindowEnter {
                at: TimePs::new(t),
                signal,
                value: 0.5,
                occupancy: 12,
                dir: StepDir::Down,
            },
        }
    }

    fn exit(t: u64, domain: DomainId, signal: SignalKind) -> TraceEvent {
        TraceEvent::Controller {
            domain,
            event: CtrlEvent::WindowExit {
                at: TimePs::new(t),
                signal,
                value: 0.0,
                occupancy: 8,
            },
        }
    }

    fn step(t: u64, domain: DomainId) -> TraceEvent {
        TraceEvent::FreqStep {
            at: TimePs::new(t),
            domain,
            from: mcd_power::OpIndex(10),
            to: mcd_power::OpIndex(8),
            from_mhz: 900.0,
            to_mhz: 850.0,
            from_mv: 1000.0,
            to_mv: 975.0,
        }
    }

    #[test]
    fn reacted_episode_measures_step_minus_earliest_pending_onset() {
        let events = vec![
            enter(100, DomainId::Int, SignalKind::Occupancy),
            enter(200, DomainId::Int, SignalKind::Delta),
            step(345, DomainId::Int),
        ];
        let eps = catalog_episodes(&events);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].domain, 0);
        assert_eq!(eps[0].onset_event_index, 0);
        assert_eq!(eps[0].onset_ps, 100);
        assert_eq!(eps[0].close_event_index, 2);
        assert_eq!(eps[0].reaction_ps, Some(245));
    }

    #[test]
    fn abandoned_episode_has_no_reaction() {
        let events = vec![
            enter(100, DomainId::Fp, SignalKind::Occupancy),
            exit(180, DomainId::Fp, SignalKind::Occupancy),
        ];
        let eps = catalog_episodes(&events);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].domain, 1);
        assert_eq!(eps[0].reaction_ps, None);
        assert_eq!(eps[0].close_ps, 180);
    }

    #[test]
    fn reaction_uses_min_pending_onset_not_episode_start() {
        // Occupancy onset at 100 is cleared at 150; the delta onset at 120
        // is still pending, so the step at 400 reacts to 120, while the
        // episode itself opened at 100.
        let events = vec![
            enter(100, DomainId::Ls, SignalKind::Occupancy),
            enter(120, DomainId::Ls, SignalKind::Delta),
            exit(150, DomainId::Ls, SignalKind::Occupancy),
            step(400, DomainId::Ls),
        ];
        let eps = catalog_episodes(&events);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].onset_ps, 100);
        assert_eq!(eps[0].reaction_ps, Some(280));
    }

    #[test]
    fn relay_resets_are_counted_only_while_active() {
        let reset = |t: u64| TraceEvent::Controller {
            domain: DomainId::Int,
            event: CtrlEvent::RelayReset {
                at: TimePs::new(t),
                signal: SignalKind::Occupancy,
                why: mcd_sim::ResetReason::BackInside,
            },
        };
        let events = vec![
            reset(50), // before any episode: not counted
            enter(100, DomainId::Int, SignalKind::Occupancy),
            reset(120),
            reset(130),
            step(200, DomainId::Int),
            reset(250), // after close: not counted
        ];
        let eps = catalog_episodes(&events);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].relay_resets, 2);
    }

    #[test]
    fn run_end_closes_open_episodes_as_abandoned() {
        let events = vec![enter(100, DomainId::Int, SignalKind::Occupancy)];
        let eps = catalog_episodes(&events);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].reaction_ps, None);
        assert_eq!(eps[0].close_event_index, 1);
    }

    #[test]
    fn independent_domains_produce_independent_episodes() {
        let events = vec![
            enter(100, DomainId::Int, SignalKind::Occupancy),
            enter(110, DomainId::Fp, SignalKind::Occupancy),
            step(200, DomainId::Fp),
            step(300, DomainId::Int),
        ];
        let eps = catalog_episodes(&events);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].domain, 0);
        assert_eq!(eps[0].reaction_ps, Some(200));
        assert_eq!(eps[1].domain, 1);
        assert_eq!(eps[1].reaction_ps, Some(90));
    }
}
