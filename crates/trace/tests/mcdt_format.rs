//! File-level `.mcdt` properties: encode→decode is the identity on
//! recordings, the footer index equals the streamed index, anchors are
//! randomly addressable, and corruption anywhere is detected.

use mcd_power::{OpIndex, TimePs};
use mcd_sim::{CtrlEvent, DomainId, SignalKind, StepDir, TraceEvent};
use mcd_trace::{
    catalog_episodes, read_anchor_at, read_index, read_mcdt, render_jsonl, write_mcdt, Anchor,
    RunRecording, EVENTS_PER_BLOCK,
};

fn enter(t: u64, domain: DomainId) -> TraceEvent {
    TraceEvent::Controller {
        domain,
        event: CtrlEvent::WindowEnter {
            at: TimePs::new(t),
            signal: SignalKind::Occupancy,
            value: (t as f64) / 7.0,
            occupancy: (t % 17) as u32,
            dir: StepDir::Down,
        },
    }
}

fn step(t: u64, domain: DomainId) -> TraceEvent {
    TraceEvent::FreqStep {
        at: TimePs::new(t),
        domain,
        from: OpIndex(50),
        to: OpIndex(46),
        from_mhz: 887.5,
        to_mhz: 875.0,
        from_mv: 1_087.5,
        to_mv: 1_075.0,
    }
}

fn histogram(t: u64, domain: DomainId, samples: u64) -> TraceEvent {
    TraceEvent::QueueHistogram {
        at: TimePs::new(t),
        domain,
        samples,
        counts: (0..8).map(|i| (samples * 3 + i) % 11).collect(),
    }
}

fn sample_runs() -> Vec<RunRecording> {
    // Run 0: long enough to span multiple event blocks, with two anchors.
    let mut events = Vec::new();
    for i in 0..(EVENTS_PER_BLOCK + 100) {
        let t = 1_000 + i * 250;
        events.push(match i % 3 {
            0 => enter(t, DomainId::Int),
            1 => step(t + 10, DomainId::Int),
            _ => histogram(t + 20, DomainId::Fp, i),
        });
    }
    let anchors = vec![
        Anchor {
            event_index: 0,
            retired: 0,
            snapshot: vec![1, 2, 3],
        },
        Anchor {
            event_index: EVENTS_PER_BLOCK / 2,
            retired: 40_000,
            snapshot: vec![9; 1_024],
        },
    ];
    vec![
        RunRecording {
            label: "fig9|adaptive|ops=600000|seed=1".into(),
            spec: Some("{\"benchmark\":\"gzip\",\"scheme\":\"adaptive\"}".into()),
            events,
            anchors,
        },
        RunRecording {
            label: "fig9|baseline|ops=600000|seed=1".into(),
            spec: None,
            events: vec![enter(10, DomainId::Ls), step(400, DomainId::Ls)],
            anchors: Vec::new(),
        },
    ]
}

#[test]
fn encode_decode_is_the_identity_on_recordings() {
    let runs = sample_runs();
    let bytes = write_mcdt(&runs);
    let file = read_mcdt(&bytes).expect("well-formed file decodes");
    assert_eq!(file.runs.len(), runs.len());
    for (got, want) in file.runs.iter().zip(&runs) {
        assert_eq!(got.label, want.label);
        assert_eq!(got.spec, want.spec);
        assert_eq!(got.events, want.events);
        assert_eq!(got.anchors.len(), want.anchors.len());
        for (ga, wa) in got.anchors.iter().zip(&want.anchors) {
            assert_eq!(ga.event_index, wa.event_index);
            assert_eq!(ga.retired, wa.retired);
            assert_eq!(ga.snapshot, wa.snapshot);
        }
    }
}

#[test]
fn footer_index_matches_streamed_catalog() {
    let runs = sample_runs();
    let bytes = write_mcdt(&runs);
    let index = read_index(&bytes).expect("index decodes");
    let full = read_mcdt(&bytes).expect("file decodes");
    assert_eq!(index, full.index);
    for (ri, run) in index.runs.iter().enumerate() {
        assert_eq!(run.label, runs[ri].label);
        assert_eq!(run.event_count, runs[ri].events.len() as u64);
        // The indexed episodes equal the in-memory catalog, offsets aside.
        let expected = catalog_episodes(&runs[ri].events);
        assert_eq!(run.episodes.len(), expected.len());
        for (got, want) in run.episodes.iter().zip(&expected) {
            assert_eq!(got.domain, want.domain);
            assert_eq!(got.onset_event_index, want.onset_event_index);
            assert_eq!(got.onset_ps, want.onset_ps);
            assert_eq!(got.close_event_index, want.close_event_index);
            assert_eq!(got.close_ps, want.close_ps);
            assert_eq!(got.reaction_ps, want.reaction_ps);
            assert_eq!(got.relay_resets, want.relay_resets);
            assert!(
                got.block_offset > 0,
                "episode block offset must point into the file"
            );
        }
    }
}

#[test]
fn anchors_are_randomly_addressable_via_the_index() {
    let runs = sample_runs();
    let bytes = write_mcdt(&runs);
    let index = read_index(&bytes).expect("index decodes");
    let refs = &index.runs[0].anchors;
    assert_eq!(refs.len(), 2);
    for (ar, want) in refs.iter().zip(&runs[0].anchors) {
        let anchor = read_anchor_at(&bytes, ar.offset).expect("anchor decodes");
        assert_eq!(anchor.event_index, want.event_index);
        assert_eq!(anchor.retired, want.retired);
        assert_eq!(anchor.snapshot, want.snapshot);
    }
}

#[test]
fn episode_block_offsets_address_the_onset_block() {
    let runs = sample_runs();
    let bytes = write_mcdt(&runs);
    let index = read_index(&bytes).expect("index decodes");
    for run in &index.runs {
        for ep in &run.episodes {
            // The byte at the episode's block offset is an events-block
            // kind tag: decoding a block there must succeed.
            assert_eq!(
                bytes[ep.block_offset as usize], 0x02,
                "offset points at an events block"
            );
        }
    }
}

#[test]
fn every_flipped_byte_in_a_block_is_detected() {
    let runs = sample_runs();
    let bytes = write_mcdt(&runs);
    // Flip a byte inside the first events block payload (skip header/
    // run-start): full decode must fail the CRC.
    let mut corrupt = bytes.clone();
    let target = bytes.len() / 3;
    corrupt[target] ^= 0x20;
    assert!(
        read_mcdt(&corrupt).is_err(),
        "flipped byte at {target} went undetected"
    );
    // Truncation loses the footer.
    assert!(read_mcdt(&bytes[..bytes.len() - 4]).is_err());
    // Garbage is rejected outright.
    assert!(read_mcdt(b"not a trace").is_err());
}

#[test]
fn mcdt_of_rendered_jsonl_round_trips_to_identical_text() {
    let runs = sample_runs();
    let labeled: Vec<(String, Vec<TraceEvent>)> = runs
        .iter()
        .map(|r| (r.label.clone(), r.events.clone()))
        .collect();
    let text = render_jsonl(&labeled);
    let bytes = write_mcdt(&runs);
    let decoded = read_mcdt(&bytes).expect("decodes");
    let relabeled: Vec<(String, Vec<TraceEvent>)> = decoded
        .runs
        .iter()
        .map(|r| (r.label.clone(), r.events.clone()))
        .collect();
    assert_eq!(
        render_jsonl(&relabeled),
        text,
        "mcdt → JSONL must be byte-identical"
    );
    // And the binary form is materially smaller than the text form.
    assert!(
        bytes.len() * 2 < text.len(),
        "binary ({}) should be at most half the JSONL ({})",
        bytes.len(),
        text.len()
    );
}
