//! Debug helper: prints per-run anchor/episode counts of a .mcdt file.
fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: dump_index FILE.mcdt");
    let bytes = std::fs::read(&path).expect("readable");
    let index = mcd_trace::read_index(&bytes).expect("valid index");
    for r in &index.runs {
        println!(
            "{}: events={} anchors={} episodes={} spec={}",
            r.label,
            r.event_count,
            r.anchors.len(),
            r.episodes.len(),
            r.spec.is_some(),
        );
    }
}
