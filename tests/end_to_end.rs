//! Cross-crate integration: every benchmark × every scheme runs to
//! completion with sane outcomes.

use mcd_bench::runner::{controller_for, run, RunConfig, Scheme};
use mcd_sim::DomainId;
use mcd_workloads::registry;

#[test]
fn every_benchmark_runs_under_every_scheme() {
    let cfg = RunConfig::quick().with_ops(8_000);
    for spec in registry::all() {
        for scheme in [
            Scheme::Baseline,
            Scheme::Adaptive,
            Scheme::Pid,
            Scheme::AttackDecay,
        ] {
            let r = run(spec.name, scheme, &cfg).expect("valid run");
            assert_eq!(r.instructions, 8_000, "{} under {:?}", spec.name, scheme);
            assert!(r.total_energy().as_joules() > 0.0);
            assert!(
                r.ipc() > 0.05,
                "{} under {:?}: ipc {}",
                spec.name,
                scheme,
                r.ipc()
            );
            for &d in &DomainId::ALL {
                let f = r.domain(d).mean_rel_freq;
                assert!(
                    (0.2..=1.02).contains(&f),
                    "{} {:?} {d}: mean rel freq {f}",
                    spec.name,
                    scheme
                );
            }
        }
    }
}

#[test]
fn schemes_are_deterministic_across_repeats() {
    let cfg = RunConfig::quick().with_ops(20_000);
    for scheme in [Scheme::Adaptive, Scheme::Pid] {
        let a = run("mpeg2_decode", scheme, &cfg).expect("valid run");
        let b = run("mpeg2_decode", scheme, &cfg).expect("valid run");
        assert_eq!(a.sim_time, b.sim_time, "{scheme:?}");
        assert_eq!(
            a.total_energy().as_joules().to_bits(),
            b.total_energy().as_joules().to_bits(),
            "{scheme:?}"
        );
        assert_eq!(a.metrics.dvfs_actions, b.metrics.dvfs_actions, "{scheme:?}");
    }
}

#[test]
fn different_seeds_change_the_run_but_not_its_invariants() {
    let base_cfg = RunConfig::quick().with_ops(20_000);
    let mut other = base_cfg.clone();
    other.seed = 99;
    let a = run("swim", Scheme::Adaptive, &base_cfg).expect("valid run");
    let b = run("swim", Scheme::Adaptive, &other).expect("valid run");
    assert_ne!(
        a.sim_time, b.sim_time,
        "different seeds should perturb timing"
    );
    assert_eq!(a.instructions, b.instructions);
}

#[test]
fn controller_factories_match_scheme_names() {
    let cfg = RunConfig::quick();
    let c = controller_for(Scheme::Adaptive, DomainId::Fp, &cfg).expect("controller");
    assert_eq!(c.name(), "adaptive");
    let c = controller_for(Scheme::Pid, DomainId::Fp, &cfg).expect("controller");
    assert_eq!(c.name(), "pid");
    let c = controller_for(Scheme::AttackDecay, DomainId::Fp, &cfg).expect("controller");
    assert_eq!(c.name(), "attack-decay");
}

#[test]
fn mcd_baseline_sync_overhead_is_small_but_real() {
    // Setting the synchronization window to zero removes the GALS penalty:
    // the run should get (slightly) faster — the "MCD overhead" the
    // original MCD papers quantify at a few percent.
    let mut with_sync = RunConfig::quick().with_ops(40_000);
    let mut no_sync = with_sync.clone();
    no_sync.sim.sync_window = mcd_power::TimePs::new(0);
    with_sync.sim.jitter_sigma_ps = 0.0;
    no_sync.sim.jitter_sigma_ps = 0.0;
    let a = run("gzip", Scheme::Baseline, &with_sync).expect("valid run");
    let b = run("gzip", Scheme::Baseline, &no_sync).expect("valid run");
    let overhead = a.sim_time.as_secs() / b.sim_time.as_secs() - 1.0;
    assert!(
        (0.0..0.10).contains(&overhead),
        "sync overhead {overhead} out of the expected band"
    );
}
