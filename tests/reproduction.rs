//! Reproduction checks: the paper's qualitative results must hold at
//! moderate run lengths (the full-size numbers live in EXPERIMENTS.md).

use mcd_bench::experiments::{fig7, table2};
use mcd_bench::runner::{run, Outcome, RunConfig, RunSet, Scheme};
use mcd_workloads::registry;

/// Figure 7's shape: under adaptive DVFS, epic_decode's FP domain drops to
/// (near) minimum during the long FP-idle stretch, recovers during the
/// modest mid-run FP phase, and climbs steeply during the final burst.
#[test]
fn fig7_fp_frequency_trace_has_the_paper_shape() {
    let spec = registry::by_name("epic_decode").expect("known benchmark");
    let cfg = RunConfig::full().with_ops(spec.cycle_length());
    let pts = fig7::series(RunSet::global(), &cfg).expect("valid run");
    assert!(pts.len() > 50);

    let value_at = |kilo_insts: f64| -> f64 {
        pts.iter()
            .min_by(|a, b| {
                (a.0 - kilo_insts)
                    .abs()
                    .partial_cmp(&(b.0 - kilo_insts).abs())
                    .expect("finite")
            })
            .expect("nonempty")
            .1
    };

    // Phase map (thousands of instructions): unpack 0-270, fp_modest
    // 270-400, entropy 400-850, fp_burst 850-1000.
    let during_idle = value_at(250.0);
    let during_modest = value_at(380.0);
    let during_idle2 = value_at(840.0);
    let during_burst = pts
        .iter()
        .filter(|p| p.0 > 880.0)
        .map(|p| p.1)
        .fold(f64::MIN, f64::max);

    assert!(
        during_idle < 0.45,
        "idle FP should be near f_min, got {during_idle}"
    );
    assert!(
        during_modest > during_idle + 0.1,
        "modest FP phase should recover: {during_modest} vs {during_idle}"
    );
    assert!(
        during_idle2 < 0.45,
        "second idle stretch should drop again, got {during_idle2}"
    );
    assert!(
        during_burst > 0.8,
        "final burst should approach f_max, got {during_burst}"
    );
}

/// The headline result at a moderate run length: meaningful average energy
/// savings at modest performance cost, in the paper's ballpark.
#[test]
fn headline_savings_land_in_the_papers_ballpark() {
    let cfg = RunConfig::full().with_ops(250_000);
    let mut outcomes = Vec::new();
    for spec in registry::all() {
        let base = run(spec.name, Scheme::Baseline, &cfg).expect("valid run");
        let adaptive = run(spec.name, Scheme::Adaptive, &cfg).expect("valid run");
        outcomes.push(Outcome::versus(&adaptive, &base));
    }
    let mean = Outcome::mean(&outcomes);
    assert!(
        (0.04..0.20).contains(&mean.energy_savings),
        "mean energy savings {} outside the paper's ballpark",
        mean.energy_savings
    );
    assert!(
        mean.perf_degradation < 0.10,
        "mean perf degradation {} too high",
        mean.perf_degradation
    );
    assert!(
        mean.edp_improvement > 0.0,
        "adaptive DVFS should improve mean EDP, got {}",
        mean.edp_improvement
    );
}

/// Table 2's cross-check: the spectral classifier should agree with the
/// designed variability class on a clear majority of benchmarks.
#[test]
fn spectral_classification_matches_designed_classes() {
    let cfg = RunConfig::full().with_ops(300_000);
    let rows = table2::classify_all(RunSet::global(), &cfg).expect("valid sweep");
    let agree = rows
        .iter()
        .filter(|r| r.classified_fast == r.designed_fast)
        .count();
    assert!(
        agree * 10 >= rows.len() * 8,
        "classifier agrees on only {agree}/{} benchmarks: {:?}",
        rows.len(),
        rows.iter()
            .filter(|r| r.classified_fast != r.designed_fast)
            .map(|r| (r.name, r.fast_variance))
            .collect::<Vec<_>>()
    );
}

/// The qualitative conclusions must not be a fluke of the workload seed:
/// across seeds, the adaptive scheme keeps a positive summed EDP gain on
/// fast-varying applications and stays ahead of attack/decay.
#[test]
fn conclusions_are_seed_stable() {
    for seed in [2u64, 3] {
        let mut cfg = RunConfig::full().with_ops(150_000);
        cfg.seed = seed;
        let mut adaptive_gain = 0.0;
        let mut ad_gain = 0.0;
        for name in ["mpeg2_decode", "swim", "applu"] {
            let base = run(name, Scheme::Baseline, &cfg).expect("valid run");
            adaptive_gain += Outcome::versus(
                &run(name, Scheme::Adaptive, &cfg).expect("valid run"),
                &base,
            )
            .edp_improvement;
            ad_gain += Outcome::versus(
                &run(name, Scheme::AttackDecay, &cfg).expect("valid run"),
                &base,
            )
            .edp_improvement;
        }
        assert!(
            adaptive_gain > 0.0,
            "seed {seed}: adaptive gain {adaptive_gain}"
        );
        assert!(
            adaptive_gain > ad_gain,
            "seed {seed}: adaptive {adaptive_gain} !> attack/decay {ad_gain}"
        );
    }
}

/// The fast-group ordering claim: adaptive beats attack/decay decisively
/// and at least matches PID on fast-varying applications.
#[test]
fn fast_group_ordering_holds() {
    let cfg = RunConfig::full().with_ops(250_000);
    let fast = ["mpeg2_decode", "swim", "applu"];
    let mut adaptive_gain = 0.0;
    let mut pid_gain = 0.0;
    let mut ad_gain = 0.0;
    for name in fast {
        let base = run(name, Scheme::Baseline, &cfg).expect("valid run");
        adaptive_gain += Outcome::versus(
            &run(name, Scheme::Adaptive, &cfg).expect("valid run"),
            &base,
        )
        .edp_improvement;
        pid_gain += Outcome::versus(&run(name, Scheme::Pid, &cfg).expect("valid run"), &base)
            .edp_improvement;
        ad_gain += Outcome::versus(
            &run(name, Scheme::AttackDecay, &cfg).expect("valid run"),
            &base,
        )
        .edp_improvement;
    }
    assert!(
        adaptive_gain > ad_gain + 0.05,
        "adaptive ({adaptive_gain}) should decisively beat attack/decay ({ad_gain})"
    );
    assert!(
        adaptive_gain > pid_gain * 0.95,
        "adaptive ({adaptive_gain}) should at least match PID ({pid_gain})"
    );
}
