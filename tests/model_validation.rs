//! Validating Section 4's analytic models against the actual simulator.

use mcd_analysis::estimate::MuFEstimator;
use mcd_baselines::FixedOperatingPoint;
use mcd_power::OpIndex;
use mcd_sim::{DomainId, Machine, SimConfig};
use mcd_workloads::{registry, TraceGenerator};

/// Measured throughput (million instructions per simulated second) with
/// the INT domain pinned at `idx` and everything else at maximum.
///
/// Two measurement details matter for the fit quality:
///
/// * The INT clock *starts* at `idx` (not just targets it). Otherwise the
///   regulator spends the first ~55 us of a max-to-min request slewing, which
///   at 60 k ops is longer than the whole run — every "pinned" point would be
///   contaminated by the transient and f_rel would never reach its target.
/// * Clock jitter stays at its default (the paper's ±10 ps). With perfectly
///   deterministic edges, frequencies at small rational ratios of the front
///   end (e.g. 625 MHz = 5:8 of 1 GHz) lock into a fixed edge alignment with
///   the synchronization window, producing resonant throughput bumps that the
///   smooth mu(f) model cannot capture. Jitter is seeded, so the measurement
///   is still deterministic.
fn mips_at(idx: OpIndex, ops: u64) -> (f64, f64) {
    let spec = registry::by_name("adpcm_decode").expect("registered");
    let r = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, ops, 1))
        .with_initial_operating_point(DomainId::Int, idx)
        .with_controller(DomainId::Int, Box::new(FixedOperatingPoint(idx)))
        .run();
    let f_rel = r.domain(DomainId::Int).mean_rel_freq;
    let mips = r.instructions as f64 / r.sim_time.as_secs() / 1e6;
    (f_rel, mips)
}

/// The μ(f) = 1/(t₁ + c₂/f) model of equation (9) should fit the
/// simulator's measured throughput-vs-frequency curve for an INT-bound
/// benchmark, with both components positive (some time is asynchronous,
/// some scales with the clock).
#[test]
fn mu_f_model_fits_simulated_throughput() {
    let ops = 60_000;
    let mut est = MuFEstimator::new();
    let mut measured = Vec::new();
    for idx in [0u16, 107, 213, 320] {
        let (f_rel, mips) = mips_at(OpIndex(idx), ops);
        est.observe(f_rel, mips);
        measured.push((f_rel, mips));
    }
    let fit = est.fit().expect("four distinct frequencies");
    assert!(
        fit.c2 > 0.0,
        "some work must scale with frequency: c2 = {}",
        fit.c2
    );
    assert!(
        fit.t1 > 0.0,
        "some work must be frequency-independent: t1 = {}",
        fit.t1
    );

    // The fit should reproduce every measured point within a few percent.
    for (f, mips) in measured {
        let predicted = fit.mu(f);
        let err = (predicted - mips).abs() / mips;
        assert!(
            err < 0.05,
            "at f={f:.2}: predicted {predicted:.1} vs measured {mips:.1}"
        );
    }

    // Held-out check at an intermediate frequency, same bound as the
    // fitted points. (The bound was temporarily loosened to 8% while the
    // measurement still included the regulator's initial slew transient;
    // see `mips_at` for the root cause.)
    let (f_mid, mips_mid) = mips_at(OpIndex(160), ops);
    let err = (fit.mu(f_mid) - mips_mid).abs() / mips_mid;
    assert!(err < 0.05, "held-out point error {err}");
}

/// Throughput must be monotone in the INT frequency for INT-bound code —
/// the basic premise of queue-based DVFS control.
#[test]
fn throughput_is_monotone_in_frequency() {
    let ops = 40_000;
    let mut last = 0.0;
    for idx in [0u16, 160, 320] {
        let (_, mips) = mips_at(OpIndex(idx), ops);
        assert!(
            mips > last,
            "throughput fell when frequency rose: {mips} after {last}"
        );
        last = mips;
    }
}
