//! Property-based integration tests: simulator invariants over randomized
//! workloads and controller configurations.

use mcd_adaptive::{AdaptiveConfig, AdaptiveDvfsController};
use mcd_sim::{DomainId, Machine, SimConfig};
use mcd_workloads::{
    BenchmarkSpec, InstructionMix, PhaseSpec, Suite, TraceGenerator, VariabilityClass,
};
use proptest::prelude::*;

/// A randomized two-phase workload.
fn arb_benchmark() -> impl Strategy<Value = BenchmarkSpec> {
    (
        0.0f64..0.5,      // fp fraction of phase A
        0.05f64..0.35,    // memory fraction
        2.0f64..10.0,     // dep mean
        5_000u64..40_000, // phase length
        0.0f64..0.15,     // l1d miss
    )
        .prop_map(|(fp, mem, dep, len, miss)| {
            let int_part = (1.0 - fp - mem - 0.15).max(0.0);
            let mix = InstructionMix::new(
                int_part,
                0.02,
                fp * 0.5,
                fp * 0.35,
                fp * 0.15,
                mem * 0.65,
                mem * 0.35,
                1.0 - int_part - 0.02 - fp - mem,
            )
            .expect("constructed mix is normalized");
            BenchmarkSpec {
                name: "prop_workload",
                suite: Suite::MediaBench,
                description: "randomized property-test workload",
                phases: vec![
                    PhaseSpec::new("a", mix, len)
                        .with_dep_mean(dep)
                        .with_misses(miss, 0.3),
                    PhaseSpec::new("b", InstructionMix::integer_typical(), len / 2)
                        .with_dep_mean(dep),
                ],
                loops: true,
                expected_variability: VariabilityClass::Slow,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any workload retires fully, at bounded IPC, with positive energy.
    #[test]
    fn simulator_invariants_hold_for_random_workloads(spec in arb_benchmark(), seed in 0u64..1000) {
        let ops = 6_000;
        let r = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, ops, seed)).run();
        prop_assert_eq!(r.instructions, ops);
        prop_assert!(r.ipc() > 0.0 && r.ipc() <= 4.0);
        prop_assert!(r.total_energy().as_joules() > 0.0);
        prop_assert!(r.l1d_miss_rate >= 0.0 && r.l1d_miss_rate <= 1.0);
        prop_assert!(r.mispredict_rate >= 0.0 && r.mispredict_rate <= 1.0);
    }

    /// Under the adaptive controller, frequencies stay in range and the
    /// run still retires everything; energy never exceeds the baseline by
    /// more than the regulator overhead allows.
    #[test]
    fn adaptive_controller_respects_frequency_bounds(spec in arb_benchmark(), seed in 0u64..1000) {
        let ops = 6_000;
        let r = Machine::new(SimConfig::default(), TraceGenerator::new(&spec, ops, seed))
            .with_controllers(|d| {
                Box::new(AdaptiveDvfsController::new(AdaptiveConfig::for_domain(d)))
            })
            .run();
        prop_assert_eq!(r.instructions, ops);
        for &d in &DomainId::BACKEND {
            let f = r.domain(d).mean_rel_freq;
            prop_assert!((0.2..=1.02).contains(&f), "{} mean rel freq {}", d, f);
        }
        // The front end is never scaled.
        let fe = r.domain(DomainId::FrontEnd).mean_rel_freq;
        prop_assert!((fe - 1.0).abs() < 0.02, "front end scaled: {}", fe);
    }

    /// Trace generation is a pure function of (spec, ops, seed).
    #[test]
    fn traces_are_reproducible(spec in arb_benchmark(), seed in 0u64..1000) {
        let a: Vec<_> = TraceGenerator::new(&spec, 3_000, seed).collect();
        let b: Vec<_> = TraceGenerator::new(&spec, 3_000, seed).collect();
        prop_assert_eq!(a, b);
    }
}
