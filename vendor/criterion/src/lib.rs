//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace points
//! `criterion = "0.5"` at this minimal timing harness implementing the
//! subset the benches use: `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Reporting is plain text (median of the sample runs, plus throughput
//! when declared). Passing `--test` (as `cargo test --benches` does) runs
//! every closure exactly once for a smoke check. No statistics machinery,
//! no HTML reports, no baselines-on-disk.

// Vendored stand-in: keep upstream-flavoured code out of the lint gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Label from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            return;
        }
        // One warmup iteration, then timed samples.
        black_box(body());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(body());
            self.measured.push(t0.elapsed());
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(&id.into().label, sample_size, test_mode, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is immediate; nothing is buffered).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples,
        test_mode,
        measured: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if test_mode {
        println!("{label}: ok (test mode)");
        return;
    }
    if bencher.measured.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    bencher.measured.sort();
    let median = bencher.measured[bencher.measured.len() / 2];
    let line = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!(
                "{label}: median {} ({:.3} Melem/s)",
                fmt_duration(median),
                per_sec / 1e6
            )
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!(
                "{label}: median {} ({:.3} MiB/s)",
                fmt_duration(median),
                per_sec / (1024.0 * 1024.0)
            )
        }
        None => format!("{label}: median {}", fmt_duration(median)),
    };
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(100));
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &41u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                black_box(x + 1)
            })
        });
        group.finish();
        assert!(runs >= 3, "warmup + samples should run, got {runs}");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("fft", 1024).label, "fft/1024");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
