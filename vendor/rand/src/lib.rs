//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no network access and no vendored crates.io
//! sources, so the workspace points its `rand = "0.8"` dependency at this
//! minimal, fully deterministic implementation of the exact subset the
//! repository uses:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`] for `f64`, `f32`, `bool`, `u32`, `u64`
//! - [`Rng::gen_range`] over integer `Range`/`RangeInclusive`
//!
//! The generator is xoshiro256** seeded through SplitMix64: high quality,
//! fast, and reproducible across platforms — which is all the seeded
//! workload generators and clock-jitter models require. Output streams do
//! **not** match upstream `rand`; they only need to be deterministic.

// Vendored stand-in: keep upstream-flavoured code out of the lint gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructors (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; the stream differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's internal state words, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`StdRng::state`]; the restored generator continues the exact
        /// same output stream. The state must not be all zeros (xoshiro's
        /// one forbidden point, which `state()` can never produce).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0; 4], "xoshiro256** state must be nonzero");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_floats_stay_in_range_and_vary() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..1000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let s = r.gen_range(-10i32..10);
            assert!((-10..10).contains(&s));
        }
    }
}
