//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace points
//! `proptest = "1"` at this minimal implementation of the subset the
//! repository's property tests use: the [`proptest!`] macro, range /
//! tuple / `prop_map` strategies, [`collection::vec`], [`sample::select`],
//! [`array::uniform8`], `any::<bool>()`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (fully deterministic — no `PROPTEST_*` environment handling), and
//! failing cases are reported but **not shrunk**.

// Vendored stand-in: keep upstream-flavoured code out of the lint gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and adapters.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Chooses uniformly among several strategies sharing a value type
    /// (what [`crate::prop_oneof!`] builds; upstream's `Union` without
    /// weights).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "union over no strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    /// Boxes a strategy for [`Union`], letting inference unify the value
    /// types of [`crate::prop_oneof!`] arms (an `as Box<dyn …>` cast
    /// would pin each arm's type before unification).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy over empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy over empty range");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i32 => u32, i64 => u64, isize => usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` for types with a canonical strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// That strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `A` (upstream `proptest::prelude::any`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Chooses uniformly from `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select over empty set");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_array {
        ($name:ident, $wrapper:ident, $n:literal) => {
            /// Strategy for `[S::Value; N]` from one element strategy.
            pub struct $wrapper<S>(S);

            /// Generates arrays of $n values drawn from `element`.
            pub fn $name<S: Strategy>(element: S) -> $wrapper<S> {
                $wrapper(element)
            }

            impl<S: Strategy> Strategy for $wrapper<S> {
                type Value = [S::Value; $n];
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.new_value(rng))
                }
            }
        };
    }

    uniform_array!(uniform4, Uniform4, 4);
    uniform_array!(uniform8, Uniform8, 8);
    uniform_array!(uniform16, Uniform16, 16);
}

pub mod test_runner {
    //! Case generation and failure reporting.

    /// Per-test configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 48 keeps the hot simulator
            // properties affordable in CI while still probing the space.
            ProptestConfig { cases: 48 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Outcome of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test identifier and case number so every property
        /// sees a distinct but reproducible stream.
        pub fn for_case(test_id: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Rebuilds the generator from a seed reported in a failure
        /// message, replaying the exact value stream of that case.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The seed that regenerates this stream via [`Self::from_seed`]
        /// (valid before any draws).
        pub fn seed(&self) -> u64 {
            self.state
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Chooses uniformly among several strategies with a common value type
/// (upstream's unweighted `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let __seed = __rng.seed();
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    // Rendered before the body can move the values; a
                    // failure report without the generating inputs (and
                    // the seed that regenerates them) is useless.
                    let __inputs: ::std::vec::Vec<::std::string::String> = ::std::vec![
                        $(::std::format!("{} = {:?}", stringify!($arg), &$arg)),+
                    ];
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{} (rng seed 0x{:016x}):\n  inputs: {}\n  {}",
                            stringify!($name),
                            case,
                            config.cases,
                            __seed,
                            __inputs.join(", "),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Skips the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 1u32..=50).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.25f64..0.75, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u8..=20, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for e in &v {
                prop_assert!(*e <= 20);
            }
        }

        #[test]
        fn mapped_tuples_work(p in arb_pair(), pick in crate::sample::select(vec![1usize, 2, 4])) {
            prop_assert!(p.0 < 100 && (1..=50).contains(&p.1));
            prop_assert!([1, 2, 4].contains(&pick));
        }

        #[test]
        fn arrays_fill_all_lanes(a in crate::array::uniform8(0.0f64..1.0)) {
            prop_assert_eq!(a.len(), 8);
            for v in a {
                prop_assert!((0.0..1.0).contains(&v));
            }
        }

        #[test]
        fn oneof_draws_from_every_arm(x in prop_oneof![
            0u64..10,
            (50u64..55).prop_map(|v| v * 2),
            Just(1_000u64),
        ]) {
            prop_assert!(x < 10 || (100..110).contains(&x) || x == 1_000);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut r1 = crate::test_runner::TestRng::for_case("t", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    // A property that fails on its very first case, used (without a
    // `#[test]` attribute) by the meta-test below.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        fn doomed_property(x in 10u32..20, flag in any::<bool>()) {
            let _ = flag;
            prop_assert!(x < 10, "x was {}", x);
        }
    }

    /// Meta-test: a `prop_assert!` failure must report the generating
    /// seed and the drawn input values, and the seed must actually
    /// replay those inputs through `TestRng::from_seed`.
    #[test]
    fn failures_report_seed_and_inputs() {
        let payload =
            std::panic::catch_unwind(doomed_property).expect_err("doomed_property cannot pass");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic carries a formatted message")
            .clone();
        assert!(
            msg.contains("doomed_property failed at case 0/8"),
            "missing case header: {msg}"
        );
        assert!(msg.contains("x was 1"), "user message lost: {msg}");

        // The seed in the report regenerates the reported inputs.
        let seed_hex = msg
            .split("rng seed 0x")
            .nth(1)
            .and_then(|rest| rest.split(')').next())
            .unwrap_or_else(|| panic!("no seed in report: {msg}"));
        let seed = u64::from_str_radix(seed_hex, 16).expect("seed parses");
        let mut rng = crate::test_runner::TestRng::from_seed(seed);
        let x = Strategy::new_value(&(10u32..20), &mut rng);
        let flag = Strategy::new_value(&any::<bool>(), &mut rng);
        assert!(
            msg.contains(&format!("inputs: x = {x:?}, flag = {flag:?}")),
            "seed 0x{seed:016x} does not replay the reported inputs: {msg}"
        );
    }
}
