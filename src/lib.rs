//! Root reproduction package: re-exports the workspace crates for examples and integration tests.
pub use mcd_adaptive as adaptive;
pub use mcd_analysis as analysis;
pub use mcd_baselines as baselines;
pub use mcd_bench as bench;
pub use mcd_power as power;
pub use mcd_sim as sim;
pub use mcd_workloads as workloads;
