#!/usr/bin/env bash
# Tier-1 gate: everything must build, every test must pass, and the
# headline experiment must run end to end. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test --workspace -q

# Smoke: the headline experiment, serial vs parallel — the reports must
# be byte-identical (each run is deterministic; only wall-clock changes).
bin=target/release/repro
serial=$(mktemp)
parallel=$(mktemp)
trap 'rm -f "$serial" "$parallel"' EXIT
"$bin" headline --quick --jobs 1 > "$serial"
"$bin" headline --quick --jobs 4 > "$parallel"
cmp "$serial" "$parallel"
echo "tier1: OK (headline --quick byte-identical at 1 and 4 jobs)"
