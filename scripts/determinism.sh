#!/usr/bin/env bash
# Determinism gate: the headline experiment's report must be
# byte-identical whatever the worker count — each simulation is
# single-threaded and deterministic; parallelism only reorders wall-clock.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=target/release/repro
if [[ ! -x "$bin" ]]; then
  cargo build --release --workspace
fi

ref=$(mktemp)
other=$(mktemp)
trap 'rm -f "$ref" "$other"' EXIT

"$bin" headline --quick --jobs 1 > "$ref"
for jobs in 2 8; do
  "$bin" headline --quick --jobs "$jobs" > "$other"
  if ! cmp "$ref" "$other"; then
    echo "determinism: headline --quick differs between --jobs 1 and --jobs $jobs" >&2
    exit 1
  fi
done
echo "determinism: OK (headline --quick byte-identical at 1, 2 and 8 jobs)"
