#!/usr/bin/env bash
# Golden-report gate: the checked-in quick reports under results/golden/
# must match what the current tree produces, byte for byte.
#
#   scripts/golden.sh --check   regenerate into a temp dir and diff (CI)
#   scripts/golden.sh --bless   regenerate results/golden/ in place
#
# Bless workflow: when a change intentionally alters a report, run
# `scripts/golden.sh --bless`, eyeball `git diff results/golden/`, and
# commit the new snapshots together with the change that caused them.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:---check}"
bin=target/release/repro

if [[ ! -x "$bin" ]]; then
  cargo build --release --workspace
fi

# Regenerates every golden artifact into $1: the per-experiment reports,
# the offline trace-analysis report, and the flight-recorder episode
# catalog (all pure functions of deterministic trace bytes). The same
# fig9 run is recorded twice — once as JSONL, once as .mcdt — and the
# converter must reproduce the JSONL byte for byte before the episode
# view is snapshotted; a lossy codec fails the regeneration itself.
regenerate() {
  local dir="$1"
  local tmp
  tmp=$(mktemp -d)
  "$bin" all --quick --jobs 4 --out "$dir" > /dev/null
  "$bin" fig9 --quick --jobs 4 --trace-out "$tmp/fig9.trace.jsonl" > /dev/null
  "$bin" trace analyze "$tmp/fig9.trace.jsonl" --out "$dir/trace-analyze.txt" > /dev/null
  "$bin" fig9 --quick --jobs 4 --shard-ops 5000 --trace-out "$tmp/sharded.jsonl" > /dev/null
  "$bin" fig9 --quick --jobs 4 --shard-ops 5000 --trace-out "$tmp/sharded.mcdt" > /dev/null
  "$bin" trace convert "$tmp/sharded.mcdt" --out "$tmp/back.jsonl" > /dev/null
  if ! cmp -s "$tmp/sharded.jsonl" "$tmp/back.jsonl"; then
    echo "golden: .mcdt -> JSONL conversion is not lossless" >&2
    rm -rf "$tmp"
    exit 1
  fi
  "$bin" trace analyze "$tmp/sharded.mcdt" --episodes --worst 10 \
    --out "$dir/trace-episodes.txt" > /dev/null
  rm -rf "$tmp"
}

case "$mode" in
  --bless)
    rm -rf results/golden
    mkdir -p results/golden
    regenerate results/golden
    echo "golden: blessed $(ls results/golden | wc -l) reports into results/golden/"
    ;;
  --check)
    fresh=$(mktemp -d)
    trap 'rm -rf "$fresh"' EXIT
    regenerate "$fresh"
    if ! diff -ru results/golden "$fresh"; then
      echo "golden: MISMATCH — if intentional, run scripts/golden.sh --bless and commit" >&2
      exit 1
    fi
    echo "golden: OK ($(ls results/golden | wc -l) reports byte-identical)"
    ;;
  *)
    echo "usage: scripts/golden.sh [--check|--bless]" >&2
    exit 2
    ;;
esac
