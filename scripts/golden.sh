#!/usr/bin/env bash
# Golden-report gate: the checked-in quick reports under results/golden/
# must match what the current tree produces, byte for byte.
#
#   scripts/golden.sh --check   regenerate into a temp dir and diff (CI)
#   scripts/golden.sh --bless   regenerate results/golden/ in place
#
# Bless workflow: when a change intentionally alters a report, run
# `scripts/golden.sh --bless`, eyeball `git diff results/golden/`, and
# commit the new snapshots together with the change that caused them.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:---check}"
bin=target/release/repro

if [[ ! -x "$bin" ]]; then
  cargo build --release --workspace
fi

# Regenerates every golden artifact into $1: the per-experiment reports
# plus the offline trace-analysis report (a pure function of the trace
# bytes, so it is as deterministic as the reports themselves).
regenerate() {
  local dir="$1"
  local trace
  trace=$(mktemp)
  "$bin" all --quick --jobs 4 --out "$dir" > /dev/null
  "$bin" fig9 --quick --jobs 4 --trace-out "$trace" > /dev/null
  "$bin" trace analyze "$trace" --out "$dir/trace-analyze.txt" > /dev/null
  rm -f "$trace"
}

case "$mode" in
  --bless)
    rm -rf results/golden
    mkdir -p results/golden
    regenerate results/golden
    echo "golden: blessed $(ls results/golden | wc -l) reports into results/golden/"
    ;;
  --check)
    fresh=$(mktemp -d)
    trap 'rm -rf "$fresh"' EXIT
    regenerate "$fresh"
    if ! diff -ru results/golden "$fresh"; then
      echo "golden: MISMATCH — if intentional, run scripts/golden.sh --bless and commit" >&2
      exit 1
    fi
    echo "golden: OK ($(ls results/golden | wc -l) reports byte-identical)"
    ;;
  *)
    echo "usage: scripts/golden.sh [--check|--bless]" >&2
    exit 2
    ;;
esac
