#!/usr/bin/env bash
# Load gate: launch mcd-serve, drive it with mcd-bench-http at the
# pinned reference rate, and hold the fresh record to the SLOs in
# results/bench_http.json via bench_gate.py --http.
#
# The server is controlled over a FIFO on --stdin-control: writing
# "shutdown" drains in-flight work and exits cleanly, so the gate never
# leaves a stray listener behind (and a hung server is killed by the
# trap instead of hanging CI).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:7991}"
RATE="${RATE:-200}"
DURATION="${DURATION:-10}"
FRESH="${FRESH:-bench_http_fresh.json}"
REFERENCE="${REFERENCE:-results/bench_http.json}"

serve=target/release/mcd-serve
bench=target/release/mcd-bench-http
if [[ ! -x "$serve" || ! -x "$bench" ]]; then
  cargo build --release -p mcd-serve -p mcd-bench-http
fi

ctl=$(mktemp -u)
mkfifo "$ctl"
serve_log=$(mktemp)
cleanup() {
  if [[ -n "${serve_pid:-}" ]] && kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid" 2>/dev/null || true
  fi
  rm -f "$ctl" "$serve_log"
}
trap cleanup EXIT

"$serve" --addr "$ADDR" --workers 4 --stdin-control < "$ctl" > "$serve_log" 2>&1 &
serve_pid=$!
# Keep the FIFO's write end open for the server's whole life.
exec 9> "$ctl"

for _ in $(seq 50); do
  if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then
    break
  fi
  sleep 0.2
done
if ! curl -sf "http://$ADDR/healthz" > /dev/null; then
  echo "load gate: server did not come up; log follows" >&2
  cat "$serve_log" >&2
  exit 1
fi

"$bench" --addr "$ADDR" --rate "$RATE" --duration "$DURATION" \
  --connections 8 --distinct 8 --ops 6000 --seed 1 --out "$FRESH" > /dev/null

echo "shutdown" >&9
exec 9>&-
wait "$serve_pid"
serve_pid=

python3 scripts/bench_gate.py --http "$REFERENCE" "$FRESH"
