#!/usr/bin/env python3
"""Benchmark-regression gate.

Compares a freshly produced `repro all --quick --bench-out` record against
the checked-in reference (results/bench_sim.json).

Exact comparisons — these are deterministic counts, so any drift means the
workload actually changed:
  * total_runs, total_instructions, total_baseline_requests
  * total_events_processed, total_cycles_skipped (the event-driven
    scheduler dispatches a deterministic event sequence, so its dispatch
    and skip counters are as reproducible as instruction counts)
  * per-experiment runs, instructions, baseline_requests, kind,
    events_processed and cycles_skipped
  * analysis-kind experiments must report zero runs

Wall-clock is compared within a generous tolerance (CI machines vary
wildly); the default allows the fresh run to take up to WALL_TOLERANCE
times the reference total. Simulated throughput is gated the same way but
as a ratio: aggregate_simulated_mips must stay above MIPS_FLOOR times the
reference figure — an absolute MIPS threshold would encode one machine's
speed, a ratio floor catches a real simulator slowdown on any machine.
The sweep wall tail is gated the same way: each simulation experiment's
run_wall_p99_s must stay under WALL_P99_TOLERANCE times the reference
figure, so a change that serializes runs or bloats one run's wall time
(the thing run-granularity sharding exists to cut) fails loudly even
when the aggregate stays within budget.

The per-experiment wall quantiles are also sanity-checked for shape
(present, non-negative, p50 <= p99). The derived
cycles_skipped_per_event field is checked for consistency with the two
exact counters it is computed from.

A record missing a gated field (e.g. a reference written by an older
binary, before a schema rename) is a hard, named failure — never a
Python traceback, and never silently passed over: the fix is to
re-baseline the reference, and the message says so.

With --http, the inputs are instead mcd-bench-http records (the
checked-in reference is results/bench_http.json) and the gate shifts
from simulation counters to serving SLOs:

Hard invariants on the fresh record — machine-independent, any failure
means the serving path broke:
  * every phase: errors == 0, resets == 0, unexpected_status == 0
  * the phase set matches the reference (keepalive + oneshot)
  * keepalive reuse_ratio >= REUSE_FLOOR (connections actually persist)
  * oneshot reuse_ratio <= 1 (the baseline stayed a baseline)

Tolerance comparisons — CI machines vary, so these are ratios/slack
against the reference, overridable via environment:
  * p99_us <= reference p99 * HTTP_P99_TOLERANCE   (default 5.0)
  * shed_rate <= reference shed_rate + HTTP_SHED_SLACK (default 0.10)
  * achieved_rps >= reference achieved_rps * HTTP_RPS_FLOOR (default 0.5)

Usage: bench_gate.py REFERENCE FRESH
       bench_gate.py --http REFERENCE FRESH
"""

import json
import os
import sys

WALL_TOLERANCE = float(os.environ.get("WALL_TOLERANCE", "4.0"))
# Regression floor on simulated MIPS, as a fraction of the reference
# figure. The inverse of WALL_TOLERANCE by default: the two express the
# same budget, one in wall time and one in throughput.
MIPS_FLOOR = float(os.environ.get("MIPS_FLOOR", str(1.0 / WALL_TOLERANCE)))
# Ceiling on each simulation experiment's run_wall_p99_s, as a multiple
# of the reference figure. Shares WALL_TOLERANCE's default: the same
# machine-variance budget, applied to the tail instead of the total.
WALL_P99_TOLERANCE = float(os.environ.get("WALL_P99_TOLERANCE", str(WALL_TOLERANCE)))

HTTP_P99_TOLERANCE = float(os.environ.get("HTTP_P99_TOLERANCE", "5.0"))
HTTP_SHED_SLACK = float(os.environ.get("HTTP_SHED_SLACK", "0.10"))
HTTP_RPS_FLOOR = float(os.environ.get("HTTP_RPS_FLOOR", "0.5"))
REUSE_FLOOR = float(os.environ.get("REUSE_FLOOR", "5.0"))

EXACT_TOTALS = [
    "total_runs",
    "total_instructions",
    "total_baseline_requests",
    "total_events_processed",
    "total_cycles_skipped",
]
EXACT_FIELDS = [
    "kind",
    "runs",
    "instructions",
    "baseline_requests",
    "events_processed",
    "cycles_skipped",
]

# The controller bake-off matrix and its companion resonance sweep are
# shape-checked only: their record blocks must exist (with the same
# EXACT_FIELDS every experiment gets), but no matrix-specific value is
# ever gated — rankings shift whenever a controller is tuned, and that
# is the matrix doing its job, not a regression. A reference written
# before the matrix existed fails here by name instead of drowning in
# set-difference noise.
MATRIX_EXPERIMENTS = ["bakeoff", "resonance"]

# The flight recorder's bench-out block. Shape-checked only: the fields
# must exist with non-negative numeric values (a reference written
# before the recorder existed fails here by name), but the values are
# not gated — encode timings are machine-dependent and byte counts are
# zero unless the run also traced.
TRACE_RECORDER_FIELDS = [
    "events",
    "episodes",
    "jsonl_bytes",
    "mcdt_bytes",
    "jsonl_encode_ns_per_event",
    "mcdt_encode_ns_per_event",
]

# Every field the HTTP gate reads from a phase record. Checked up front
# so an old-schema record fails with its missing fields named instead of
# a KeyError traceback mid-comparison.
HTTP_PHASE_FIELDS = [
    "requests",
    "errors",
    "resets",
    "unexpected_status",
    "p99_us",
    "shed_rate",
    "achieved_rps",
    "reuse_ratio",
]


def load(path):
    with open(path) as f:
        return json.load(f)


def missing_fields(record, fields):
    return [k for k in fields if k not in record]


def gate_http(ref, fresh):
    """SLO gate over two mcd-bench-http records; returns error strings."""
    errors = []
    for label, rec in (("reference", ref), ("fresh", fresh)):
        if not isinstance(rec.get("phases"), list):
            errors.append(
                f"{label} record has no 'phases' list — not an "
                f"mcd-bench-http record (old schema? re-baseline it)"
            )
    if errors:
        return errors
    ref_phases = {p["mode"]: p for p in ref["phases"] if "mode" in p}
    fresh_phases = {p["mode"]: p for p in fresh["phases"] if "mode" in p}
    if set(ref_phases) != set(fresh_phases):
        errors.append(
            f"phase sets differ: reference={sorted(ref_phases)} "
            f"fresh={sorted(fresh_phases)}"
        )

    for mode in sorted(set(ref_phases) & set(fresh_phases)):
        r, f = ref_phases[mode], fresh_phases[mode]
        bad_schema = False
        for label, rec in (("reference", r), ("fresh", f)):
            missing = missing_fields(rec, HTTP_PHASE_FIELDS)
            if missing:
                errors.append(
                    f"{mode}: {label} phase is missing {missing} — "
                    f"old-schema record; re-baseline it"
                )
                bad_schema = True
        if bad_schema:
            continue
        if f["requests"] == 0:
            errors.append(f"{mode}: zero requests completed")
            continue
        for hard in ("errors", "resets", "unexpected_status"):
            if f[hard] != 0:
                errors.append(f"{mode}: {hard} = {f[hard]} (must be 0)")
        # A zero-throughput reference can't anchor a ratio: every p99
        # passes a 0-based budget and every rps clears a 0 floor. That is
        # a broken baseline, not a pass.
        if r["p99_us"] <= 0 or r["achieved_rps"] <= 0:
            errors.append(
                f"{mode}: reference p99_us={r['p99_us']} "
                f"achieved_rps={r['achieved_rps']} — a zero-throughput "
                f"reference cannot anchor ratio gates; re-baseline it"
            )
            continue
        p99_budget = r["p99_us"] * HTTP_P99_TOLERANCE
        if f["p99_us"] > p99_budget:
            errors.append(
                f"{mode}: p99 {f['p99_us']}us exceeds "
                f"{HTTP_P99_TOLERANCE:.1f}x reference ({p99_budget:.0f}us)"
            )
        shed_budget = r["shed_rate"] + HTTP_SHED_SLACK
        if f["shed_rate"] > shed_budget:
            errors.append(
                f"{mode}: shed_rate {f['shed_rate']:.4f} exceeds "
                f"reference + slack ({shed_budget:.4f})"
            )
        rps_floor = r["achieved_rps"] * HTTP_RPS_FLOOR
        if f["achieved_rps"] < rps_floor:
            errors.append(
                f"{mode}: achieved {f['achieved_rps']:.1f} rps below "
                f"{HTTP_RPS_FLOOR:.2f}x reference ({rps_floor:.1f} rps)"
            )

    keepalive = fresh_phases.get("keepalive")
    if keepalive and keepalive["reuse_ratio"] < REUSE_FLOOR:
        errors.append(
            f"keepalive: reuse_ratio {keepalive['reuse_ratio']:.2f} below "
            f"the {REUSE_FLOOR:.1f}x floor — connections are not persisting"
        )
    oneshot = fresh_phases.get("oneshot")
    if oneshot and oneshot["reuse_ratio"] > 1.0 + 1e-9:
        errors.append(
            f"oneshot: reuse_ratio {oneshot['reuse_ratio']:.2f} above 1 — "
            f"the baseline phase reused connections"
        )
    return errors


def main_http(ref_path, fresh_path):
    ref = load(ref_path)
    fresh = load(fresh_path)
    errors = gate_http(ref, fresh)
    if errors:
        print("load gate: FAIL", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        sys.exit(1)
    phases = {p["mode"]: p for p in fresh["phases"]}
    summary = ", ".join(
        f"{mode} {p['requests']} reqs p99 {p['p99_us'] / 1000.0:.1f}ms "
        f"shed {p['shed_rate']:.2%} reuse {p['reuse_ratio']:.1f}x"
        for mode, p in sorted(phases.items())
    )
    print(f"load gate: OK ({summary})")


def main():
    args = sys.argv[1:]
    if args and args[0] == "--http":
        if len(args) != 3:
            sys.exit(f"usage: {sys.argv[0]} --http REFERENCE FRESH")
        main_http(args[1], args[2])
        return
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} [--http] REFERENCE FRESH")
    ref = load(sys.argv[1])
    fresh = load(sys.argv[2])
    errors = []

    for label, rec in (("reference", ref), ("fresh", fresh)):
        missing = missing_fields(
            rec, EXACT_TOTALS + ["total_wall_s", "aggregate_simulated_mips"]
        )
        if missing:
            print("bench gate: FAIL", file=sys.stderr)
            print(
                f"  {label} record is missing {missing} — old-schema "
                f"record; re-baseline it (repro all --quick --bench-out)",
                file=sys.stderr,
            )
            sys.exit(1)

    for key in EXACT_TOTALS:
        if ref[key] != fresh[key]:
            errors.append(f"{key}: reference {ref[key]} != fresh {fresh[key]}")

    for label, rec in (("reference", ref), ("fresh", fresh)):
        tr = rec.get("trace_recorder")
        if not isinstance(tr, dict):
            errors.append(
                f"{label} record has no trace_recorder block — old-schema "
                f"record (pre-flight-recorder); re-baseline it "
                f"(repro all --quick --bench-out)"
            )
            continue
        missing = missing_fields(tr, TRACE_RECORDER_FIELDS)
        if missing:
            errors.append(
                f"{label} trace_recorder block is missing {missing} — "
                f"old-schema record; re-baseline it"
            )
            continue
        bad = [
            k
            for k in TRACE_RECORDER_FIELDS
            if not isinstance(tr[k], (int, float)) or tr[k] < 0
        ]
        if bad:
            errors.append(
                f"{label} trace_recorder fields {bad} must be "
                f"non-negative numbers"
            )

    ref_exps = {e["experiment"]: e for e in ref["experiments"]}
    fresh_exps = {e["experiment"]: e for e in fresh["experiments"]}
    for name in MATRIX_EXPERIMENTS:
        for label, exps in (("reference", ref_exps), ("fresh", fresh_exps)):
            if name not in exps:
                errors.append(
                    f"{name}: {label} record has no block for it — "
                    f"old-schema record (pre-bakeoff matrix); re-baseline "
                    f"it (repro all --quick --bench-out)"
                )
    if set(ref_exps) != set(fresh_exps):
        errors.append(
            f"experiment sets differ: only-reference={sorted(set(ref_exps) - set(fresh_exps))} "
            f"only-fresh={sorted(set(fresh_exps) - set(ref_exps))}"
        )
    for name in sorted(set(ref_exps) & set(fresh_exps)):
        r, f = ref_exps[name], fresh_exps[name]
        bad_schema = False
        for label, rec in (("reference", r), ("fresh", f)):
            missing = missing_fields(rec, EXACT_FIELDS)
            if missing:
                errors.append(
                    f"{name}: {label} record is missing {missing} — "
                    f"old-schema record; re-baseline it"
                )
                bad_schema = True
        if bad_schema:
            continue
        for key in EXACT_FIELDS:
            if r[key] != f[key]:
                errors.append(f"{name}.{key}: reference {r[key]!r} != fresh {f[key]!r}")
        if f["kind"] == "analysis" and f["runs"] != 0:
            errors.append(f"{name}: analysis experiment reports {f['runs']} runs")
        p50, p99 = f.get("run_wall_p50_s"), f.get("run_wall_p99_s")
        if p50 is None or p99 is None:
            errors.append(f"{name}: missing run_wall_p50_s/run_wall_p99_s")
        elif p50 < 0 or p99 < 0 or p50 > p99:
            errors.append(f"{name}: malformed wall quantiles p50={p50} p99={p99}")
        elif f["kind"] == "simulation":
            # The tail gate: sharding splits long runs into segments, so
            # the per-run (per-segment) wall p99 must stay in the same
            # ballpark as the reference. A reference tail of 0 (a run too
            # fast to measure) can't anchor a ratio and is skipped.
            ref_p99 = r.get("run_wall_p99_s")
            if ref_p99 is not None and ref_p99 > 0:
                p99_budget = ref_p99 * WALL_P99_TOLERANCE
                if p99 > p99_budget:
                    errors.append(
                        f"{name}: run_wall_p99_s {p99:.3f}s exceeds "
                        f"{WALL_P99_TOLERANCE:.1f}x reference ({p99_budget:.3f}s)"
                    )
        spe = f.get("cycles_skipped_per_event")
        want = f["cycles_skipped"] / f["events_processed"] if f["events_processed"] else 0.0
        if spe is None or abs(spe - want) > 0.005 + 1e-9:
            errors.append(
                f"{name}: cycles_skipped_per_event {spe} inconsistent with "
                f"counters (expected ~{want:.2f})"
            )

    budget = ref["total_wall_s"] * WALL_TOLERANCE
    if fresh["total_wall_s"] > budget:
        errors.append(
            f"total_wall_s {fresh['total_wall_s']:.3f}s exceeds "
            f"{WALL_TOLERANCE:.1f}x reference ({budget:.3f}s)"
        )

    ref_mips = ref["aggregate_simulated_mips"]
    fresh_mips = fresh["aggregate_simulated_mips"]
    mips_ratio = fresh_mips / ref_mips if ref_mips > 0 else float("inf")
    if mips_ratio < MIPS_FLOOR:
        errors.append(
            f"aggregate_simulated_mips {fresh_mips:.2f} is "
            f"{mips_ratio:.2f}x the reference ({ref_mips:.2f}); "
            f"floor is {MIPS_FLOOR:.2f}x"
        )

    if errors:
        print("bench gate: FAIL", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        sys.exit(1)
    skipped = fresh["total_cycles_skipped"]
    events = fresh["total_events_processed"]
    print(
        f"bench gate: OK ({fresh['total_runs']} runs, "
        f"{fresh['total_instructions']} instructions, "
        f"wall {fresh['total_wall_s']:.1f}s <= {budget:.1f}s budget, "
        f"{fresh_mips:.2f} MIPS = {mips_ratio:.2f}x reference, "
        f"{skipped / max(events, 1):.2f} cycles skipped per event)"
    )


if __name__ == "__main__":
    main()
