#!/usr/bin/env python3
"""Benchmark-regression gate.

Compares a freshly produced `repro all --quick --bench-out` record against
the checked-in reference (results/bench_sim.json).

Exact comparisons — these are deterministic counts, so any drift means the
workload actually changed:
  * total_runs, total_instructions, total_baseline_cache_hits
  * per-experiment runs, instructions, baseline_cache_hits and kind
  * analysis-kind experiments must report zero runs

Wall-clock is compared within a generous tolerance (CI machines vary
wildly); the default allows the fresh run to take up to WALL_TOLERANCE
times the reference total. The per-experiment wall-time quantiles
(run_wall_p50_s / run_wall_p99_s) are informational — they are only
sanity-checked for shape (present, non-negative, p50 <= p99), never
compared against the reference.

Usage: bench_gate.py REFERENCE FRESH
"""

import json
import os
import sys

WALL_TOLERANCE = float(os.environ.get("WALL_TOLERANCE", "4.0"))

EXACT_TOTALS = ["total_runs", "total_instructions", "total_baseline_cache_hits"]
EXACT_FIELDS = ["kind", "runs", "instructions", "baseline_cache_hits"]


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} REFERENCE FRESH")
    ref = load(sys.argv[1])
    fresh = load(sys.argv[2])
    errors = []

    for key in EXACT_TOTALS:
        if ref[key] != fresh[key]:
            errors.append(f"{key}: reference {ref[key]} != fresh {fresh[key]}")

    ref_exps = {e["experiment"]: e for e in ref["experiments"]}
    fresh_exps = {e["experiment"]: e for e in fresh["experiments"]}
    if set(ref_exps) != set(fresh_exps):
        errors.append(
            f"experiment sets differ: only-reference={sorted(set(ref_exps) - set(fresh_exps))} "
            f"only-fresh={sorted(set(fresh_exps) - set(ref_exps))}"
        )
    for name in sorted(set(ref_exps) & set(fresh_exps)):
        r, f = ref_exps[name], fresh_exps[name]
        for key in EXACT_FIELDS:
            if r[key] != f[key]:
                errors.append(f"{name}.{key}: reference {r[key]!r} != fresh {f[key]!r}")
        if f["kind"] == "analysis" and f["runs"] != 0:
            errors.append(f"{name}: analysis experiment reports {f['runs']} runs")
        p50, p99 = f.get("run_wall_p50_s"), f.get("run_wall_p99_s")
        if p50 is None or p99 is None:
            errors.append(f"{name}: missing run_wall_p50_s/run_wall_p99_s")
        elif p50 < 0 or p99 < 0 or p50 > p99:
            errors.append(f"{name}: malformed wall quantiles p50={p50} p99={p99}")

    budget = ref["total_wall_s"] * WALL_TOLERANCE
    if fresh["total_wall_s"] > budget:
        errors.append(
            f"total_wall_s {fresh['total_wall_s']:.3f}s exceeds "
            f"{WALL_TOLERANCE:.1f}x reference ({budget:.3f}s)"
        )

    if errors:
        print("bench gate: FAIL", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        sys.exit(1)
    print(
        f"bench gate: OK ({fresh['total_runs']} runs, "
        f"{fresh['total_instructions']} instructions, "
        f"wall {fresh['total_wall_s']:.1f}s <= {budget:.1f}s budget)"
    )


if __name__ == "__main__":
    main()
